package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Component identifies who spent simulated energy. The phone's four power
// states are separate components so the ledger reproduces the paper's
// Table 1 accounting exactly: the sum of the four phone components equals
// the phone state machine's total energy, and the grand total equals the
// run's aggregate energy.
type Component int

const (
	// PhoneAsleep..PhoneFallingAsleep attribute the main processor's
	// dwell-time energy per power state (paper Table 1).
	PhoneAsleep Component = iota
	PhoneWaking
	PhoneAwake
	PhoneFallingAsleep
	// HubDevice is the sensor-hub microcontroller's constant active draw.
	HubDevice
	// LinkWire is first-transmission wire occupancy of the serial link.
	LinkWire
	// LinkRetransmit is the ARQ overhead: retransmitted frames plus all
	// acknowledgement traffic.
	LinkRetransmit
	// PhoneFallback is the extra main-processor draw of phone-side
	// fallback sensing: while the supervisor believes the hub is down,
	// and for conditions the admission controller degraded off an
	// overloaded hub (steady-state overflow, not an outage).
	PhoneFallback
	// AdaptSavings is the hub energy the adaptive policy engine saved
	// versus the static configuration: the counterfactual static draw
	// minus the adapted draw over the same interval. HubDevice plus
	// AdaptSavings equals the static hub bill exactly, so adaptive runs
	// stay conserving against the static baseline.
	AdaptSavings
	numComponents int = iota
)

// String returns the component's report name.
func (c Component) String() string {
	switch c {
	case PhoneAsleep:
		return "phone.asleep"
	case PhoneWaking:
		return "phone.waking-up"
	case PhoneAwake:
		return "phone.awake"
	case PhoneFallingAsleep:
		return "phone.falling-asleep"
	case HubDevice:
		return "hub.device"
	case LinkWire:
		return "link.wire"
	case LinkRetransmit:
		return "link.retransmit"
	case PhoneFallback:
		return "phone.fallback"
	case AdaptSavings:
		return "adapt.savings"
	default:
		return fmt.Sprintf("component(%d)", int(c))
	}
}

// Components lists every component in declaration order.
func Components() []Component {
	out := make([]Component, numComponents)
	for i := range out {
		out[i] = Component(i)
	}
	return out
}

// Ledger attributes simulated millijoules to components and hub cycles to
// pipeline stages. It is mutex-protected so the parallel evaluation pool
// can share one ledger across cells; per-run simulation code typically
// deposits once at the end of the run, so the lock is never hot.
type Ledger struct {
	mu     sync.Mutex
	mj     [numComponents]float64
	cycles map[string]float64 // pipeline stage kind -> hub cycles
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{cycles: make(map[string]float64)}
}

// AddEnergyMJ attributes mj millijoules to a component. No-op on nil.
func (l *Ledger) AddEnergyMJ(c Component, mj float64) {
	if l == nil || c < 0 || int(c) >= numComponents {
		return
	}
	l.mu.Lock()
	l.mj[c] += mj
	l.mu.Unlock()
}

// AddStageCycles attributes hub cycles to a pipeline stage kind. No-op on
// nil.
func (l *Ledger) AddStageCycles(kind string, cycles float64) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.cycles[kind] += cycles
	l.mu.Unlock()
}

// EnergyMJ returns the energy attributed to one component (0 on nil).
func (l *Ledger) EnergyMJ(c Component) float64 {
	if l == nil || c < 0 || int(c) >= numComponents {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.mj[c]
}

// TotalMJ returns the energy attributed across all components (0 on nil).
func (l *Ledger) TotalMJ() float64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var sum float64
	for _, v := range l.mj {
		sum += v
	}
	return sum
}

// StageCycles returns the cycles attributed to one stage kind (0 on nil).
func (l *Ledger) StageCycles(kind string) float64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.cycles[kind]
}

// TotalCycles returns the cycles attributed across all stages (0 on nil).
func (l *Ledger) TotalCycles() float64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var sum float64
	for _, v := range l.cycles {
		sum += v
	}
	return sum
}

// LedgerSnapshot is the ledger's exported state.
type LedgerSnapshot struct {
	EnergyMJ    map[string]float64 `json:"energy_mj"`
	TotalMJ     float64            `json:"total_mj"`
	StageCycles map[string]float64 `json:"stage_cycles"`
	TotalCycles float64            `json:"total_cycles"`
}

// Snapshot exports the ledger (zero components omitted).
func (l *Ledger) Snapshot() LedgerSnapshot {
	snap := LedgerSnapshot{
		EnergyMJ:    make(map[string]float64),
		StageCycles: make(map[string]float64),
	}
	if l == nil {
		return snap
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for c, v := range l.mj {
		if v != 0 {
			snap.EnergyMJ[Component(c).String()] = v
			snap.TotalMJ += v
		}
	}
	for k, v := range l.cycles {
		snap.StageCycles[k] = v
		snap.TotalCycles += v
	}
	return snap
}

// WriteText renders the ledger as aligned text: energy by component, then
// cycles by stage, both name-sorted with totals.
func (l *Ledger) WriteText(w io.Writer) error {
	snap := l.Snapshot()
	var b strings.Builder
	b.WriteString("energy (mJ):\n")
	for _, name := range sortedKeys(snap.EnergyMJ) {
		fmt.Fprintf(&b, "  %-24s %.6f\n", name, snap.EnergyMJ[name])
	}
	fmt.Fprintf(&b, "  %-24s %.6f\n", "total", snap.TotalMJ)
	b.WriteString("hub cycles by stage:\n")
	for _, name := range sortedKeys(snap.StageCycles) {
		fmt.Fprintf(&b, "  %-24s %.0f\n", name, snap.StageCycles[name])
	}
	fmt.Fprintf(&b, "  %-24s %.0f\n", "total", snap.TotalCycles)
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteJSON renders the ledger snapshot as JSON.
func (l *Ledger) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(l.Snapshot())
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
