package telemetry

import (
	"encoding/json"
	"strings"
	"testing"
)

// chromeTrace mirrors the exported document for schema checking.
type chromeTrace struct {
	TraceEvents []map[string]any `json:"traceEvents"`
}

func TestTracerChromeSchema(t *testing.T) {
	tr := NewTracer()
	var clk Clock
	phone := tr.Stream("phone", &clk)
	hub := tr.Stream("hub", &clk)

	clk.SetSec(1.5)
	phone.InstantStr("phone.state", "power", "to", "waking-up")
	hub.Instant1("wake.sent", "hub", "value", 3.25)
	hub.Span("stage window", "interp", 1.0, 0.25)
	phone.Counter("pending", 2)

	var out strings.Builder
	if err := tr.WriteJSON(&out); err != nil {
		t.Fatal(err)
	}
	var doc chromeTrace
	if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	// 2 thread_name metadata + 4 events.
	if len(doc.TraceEvents) != 6 {
		t.Fatalf("got %d events, want 6", len(doc.TraceEvents))
	}
	for i, e := range doc.TraceEvents {
		for _, key := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := e[key]; !ok {
				t.Errorf("event %d missing required key %q: %v", i, key, e)
			}
		}
	}
	// The instant carries the simulated timestamp in microseconds.
	var sawWake bool
	for _, e := range doc.TraceEvents {
		if e["name"] == "wake.sent" {
			sawWake = true
			if ts := e["ts"].(float64); ts != 1.5e6 {
				t.Errorf("wake ts = %g us, want 1.5e6", ts)
			}
			if e["ph"] != "i" {
				t.Errorf("wake ph = %v, want i", e["ph"])
			}
		}
		if e["name"] == "stage window" {
			if e["ph"] != "X" {
				t.Errorf("span ph = %v, want X", e["ph"])
			}
			if dur := e["dur"].(float64); dur != 0.25e6 {
				t.Errorf("span dur = %g us, want 0.25e6", dur)
			}
		}
	}
	if !sawWake {
		t.Error("trace missing wake.sent instant")
	}
}

func TestTracerStreamsGetDistinctTIDs(t *testing.T) {
	tr := NewTracer()
	var clk Clock
	a := tr.Stream("a", &clk)
	b := tr.Stream("b", &clk)
	if a.tid == b.tid {
		t.Errorf("streams share tid %d", a.tid)
	}
}

func TestTracerEventCap(t *testing.T) {
	tr := NewTracer()
	tr.SetMaxEvents(4)
	var clk Clock
	s := tr.Stream("s", &clk) // 1 metadata event
	for i := 0; i < 10; i++ {
		s.Instant("e", "c")
	}
	if got := tr.Events(); got != 4 {
		t.Errorf("buffered %d events, want cap 4", got)
	}
	if got := tr.Dropped(); got != 7 {
		t.Errorf("dropped %d events, want 7", got)
	}
}

func TestEmptyTracerExportsValidDocument(t *testing.T) {
	var out strings.Builder
	var tr *Tracer
	if err := tr.WriteJSON(&out); err != nil {
		t.Fatal(err)
	}
	var doc chromeTrace
	if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.TraceEvents == nil || len(doc.TraceEvents) != 0 {
		t.Errorf("nil tracer must export an empty traceEvents array, got %v", doc.TraceEvents)
	}
}

func TestClock(t *testing.T) {
	var c Clock
	c.SetSec(2)
	if c.NowUS() != 2e6 || c.NowSec() != 2 {
		t.Errorf("clock = %g us / %g s", c.NowUS(), c.NowSec())
	}
	var nilC *Clock
	nilC.SetSec(5)
	if nilC.NowUS() != 0 || nilC.NowSec() != 0 {
		t.Error("nil clock must read zero")
	}
}
