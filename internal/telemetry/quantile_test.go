package telemetry

import (
	"math"
	"math/rand"
	"testing"
)

// TestQuantileUniform pins the interpolation against an exactly known
// distribution: the integers 1..100 observed into decade buckets put ten
// samples in each bucket, so every decile lands exactly on a bucket edge.
func TestQuantileUniform(t *testing.T) {
	r := NewRegistry()
	bounds := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	h := r.Histogram("u", bounds)
	for v := 1; v <= 100; v++ {
		h.Observe(float64(v))
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.5, 50},
		{0.1, 10},
		{0.99, 99},
		{1.0, 100},
		{0.25, 25},
		{0.999, 99.9},
	} {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Quantile(%g) = %g, want %g", tc.q, got, tc.want)
		}
	}
}

// TestQuantileSkewed checks a heavily skewed distribution: estimates must
// stay within one bucket width of the true sample quantile.
func TestQuantileSkewed(t *testing.T) {
	r := NewRegistry()
	bounds := []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000}
	h := r.Histogram("s", bounds)
	rng := rand.New(rand.NewSource(7))
	var samples []float64
	for i := 0; i < 10000; i++ {
		v := math.Exp(rng.NormFloat64()*1.5 + 2) // log-normal, long tail
		if v > 1000 {
			v = 1000
		}
		samples = append(samples, v)
		h.Observe(v)
	}
	exact := func(q float64) float64 {
		s := append([]float64(nil), samples...)
		sortFloats(s)
		return s[int(q*float64(len(s)-1))]
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		got, want := h.Quantile(q), exact(q)
		// The estimate must land in the same bucket as the true value.
		if bucketOf(bounds, got) != bucketOf(bounds, want) {
			t.Errorf("Quantile(%g) = %g landed outside the true value's bucket (true %g)", q, got, want)
		}
	}
}

func sortFloats(s []float64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func bucketOf(bounds []float64, v float64) int {
	for i, b := range bounds {
		if v <= b {
			return i
		}
	}
	return len(bounds)
}

// TestQuantileEdges covers the degenerate shapes: nil and empty
// histograms, clamped q, a distribution entirely in the overflow bucket,
// negative-bound buckets, and a single-bucket histogram.
func TestQuantileEdges(t *testing.T) {
	var nilH *Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Errorf("nil histogram Quantile = %g, want 0", got)
	}

	r := NewRegistry()
	empty := r.Histogram("empty", []float64{1, 2})
	if got := empty.Quantile(0.9); got != 0 {
		t.Errorf("empty histogram Quantile = %g, want 0", got)
	}

	over := r.Histogram("overflow", []float64{1, 2})
	over.Observe(50)
	over.Observe(60)
	if got := over.Quantile(0.5); got != 2 {
		t.Errorf("overflow-only Quantile = %g, want saturation at last bound 2", got)
	}

	clamp := r.Histogram("clamp", []float64{10})
	clamp.Observe(5)
	if got := clamp.Quantile(-3); got != 0 {
		t.Errorf("q<0 should clamp to 0 (lower edge), got %g", got)
	}
	if got := clamp.Quantile(7); got != 10 {
		t.Errorf("q>1 should clamp to 1 (upper bound), got %g", got)
	}

	neg := r.Histogram("neg", []float64{-10, 0, 10})
	neg.Observe(-15) // first bucket, whose upper bound is negative
	if got := neg.Quantile(0.5); got != -10 {
		t.Errorf("non-positive first bound should return the bound, got %g", got)
	}
	neg.Observe(-5) // second bucket: interpolates between -10 and 0
	if got := neg.Quantile(1.0); got != 0 {
		t.Errorf("q=1 in (-10,0] bucket should return 0, got %g", got)
	}

	noBounds := r.Histogram("nobounds", nil)
	noBounds.Observe(1)
	if got := noBounds.Quantile(0.5); got != 0 {
		t.Errorf("histogram with only the +Inf bucket should return 0, got %g", got)
	}
}

// TestQuantileMonotone: for a fixed histogram, Quantile must be
// non-decreasing in q.
func TestQuantileMonotone(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("m", []float64{0.5, 1, 2, 4, 8, 16})
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		h.Observe(rng.ExpFloat64() * 3)
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.01 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile not monotone: q=%g gave %g after %g", q, v, prev)
		}
		prev = v
	}
}
