package ir

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"sidewinder/internal/core"
)

// This file gives the IR its graph form. The textual IR (ir.go) and the
// validated core.Plan are linear: a flat statement list whose sharing is
// implicit in node references. The DAG makes the sharing first-class:
// typed nodes with explicit parent/child edges, each carrying a stable
// structural identity (a canonical key and an FNV-1a hash of it), so the
// compile pass (compile.go) can hash-cons structurally identical
// subgraphs across every resident application's pipeline and bill and
// execute them exactly once.

// NodeClass distinguishes the two DAG node types.
type NodeClass int

const (
	// SourceNode is a raw sensor channel feeding the graph.
	SourceNode NodeClass = iota
	// StageNode is one algorithm instance.
	StageNode
)

// String returns the class name for diagnostics.
func (c NodeClass) String() string {
	switch c {
	case SourceNode:
		return "source"
	case StageNode:
		return "stage"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// nodeFacts are the static demand facts a stage node carries, copied from
// the originating (already validated) plan node so demand analysis never
// needs a catalog. Two nodes with equal keys have equal facts: the key
// encodes the kind, the normalized parameters and the full upstream
// structure down to the channels, which together determine cost, rate and
// memory.
type nodeFacts struct {
	cost    core.CostEstimate
	rate    float64 // invocation rate, Hz
	outRate float64 // emission rate, Hz
	memory  int     // instance state, bytes
}

// DAGNode is one vertex of the pipeline DAG: a sensor channel source or a
// parameterized algorithm stage, linked to its producers (parents) and
// consumers (children).
type DAGNode struct {
	id    int
	class NodeClass

	// Channel is set for source nodes.
	Channel core.SensorChannel
	// Kind and Params describe stage nodes; Params are normalized (and,
	// after folding, canonical).
	Kind   core.AlgorithmKind
	Params core.Params

	// Key is the canonical structural identity: the stage rendering plus
	// the recursively rendered parent keys. Nodes with equal keys compute
	// identical values on identical sensor input. The format matches the
	// merged interpreter's historical signature scheme, so DAG-based
	// demand agrees with it term for term.
	Key string
	// Hash is the 64-bit FNV-1a of Key — the stable structural hash shown
	// in dot exports and diagnostics.
	Hash uint64

	parents  []*DAGNode
	children []*DAGNode

	facts nodeFacts
}

// ID returns the node's creation index (0-based). Parents always have
// smaller IDs than their children, so creation order is a topological
// order.
func (n *DAGNode) ID() int { return n.id }

// Class reports whether the node is a source or a stage.
func (n *DAGNode) Class() NodeClass { return n.class }

// Parents returns the node's producers in port order.
func (n *DAGNode) Parents() []*DAGNode { return n.parents }

// Children returns the node's consumers in creation order.
func (n *DAGNode) Children() []*DAGNode { return n.children }

// Cost returns the node's per-invocation work (stage nodes).
func (n *DAGNode) Cost() core.CostEstimate { return n.facts.cost }

// Rate returns the node's invocation rate in Hz (stage nodes).
func (n *DAGNode) Rate() float64 { return n.facts.rate }

// OutRate returns the node's emission rate in Hz (stage nodes).
func (n *DAGNode) OutRate() float64 { return n.facts.outRate }

// Memory returns the node's instance state size in bytes (stage nodes).
func (n *DAGNode) Memory() int { return n.facts.memory }

// Label renders the node for display: the channel name for sources, the
// parameterized stage for stages.
func (n *DAGNode) Label() string {
	if n.class == SourceNode {
		return string(n.Channel)
	}
	return core.Stage{Kind: n.Kind, Params: n.Params}.String()
}

// DAG is a hash-consing builder of pipeline graphs: Source and Stage
// return the existing node when one with the same structural key was
// already created, so identical subgraphs — within one pipeline or across
// many — collapse to shared vertices as the graph is built.
type DAG struct {
	nodes []*DAGNode
	byKey map[string]*DAGNode
	uniq  int
}

// NewDAG returns an empty graph.
func NewDAG() *DAG {
	return &DAG{byKey: make(map[string]*DAGNode)}
}

// Nodes returns every node in creation (= topological) order.
func (d *DAG) Nodes() []*DAGNode { return d.nodes }

// Len returns the node count.
func (d *DAG) Len() int { return len(d.nodes) }

// Source returns the node for a sensor channel, creating it on first use.
// A channel's key is its name: the channel IS its structural identity.
func (d *DAG) Source(ch core.SensorChannel) *DAGNode {
	key := string(ch)
	if n, ok := d.byKey[key]; ok {
		return n
	}
	n := &DAGNode{
		id:      len(d.nodes),
		class:   SourceNode,
		Channel: ch,
		Key:     key,
		Hash:    hashKey(key),
	}
	d.nodes = append(d.nodes, n)
	d.byKey[key] = n
	return n
}

// Stage adds (or finds) the stage node with the given kind, normalized
// parameters and parents. The second result reports whether the node is
// fresh; false means an existing structurally identical node was reused.
// With unique set, hash-consing is suppressed and a fresh node is always
// created (the no-CSE baseline).
//
// For the one exactly-commutative aggregator (`and`, which emits the
// minimum of its synchronized inputs), parents are canonicalized into
// key order so and(A,B) and and(B,A) share one node; all other kinds keep
// the caller's port order.
func (d *DAG) Stage(kind core.AlgorithmKind, params core.Params, parents []*DAGNode, facts nodeFacts, unique bool) (*DAGNode, bool) {
	parents = append([]*DAGNode(nil), parents...)
	if kind == core.KindAnd {
		sort.SliceStable(parents, func(i, j int) bool { return parents[i].Key < parents[j].Key })
	}
	key := stageKey(kind, params, parents)
	if unique {
		key = fmt.Sprintf("%s#%d", key, d.uniq)
		d.uniq++
	} else if n, ok := d.byKey[key]; ok {
		return n, false
	}
	n := &DAGNode{
		id:      len(d.nodes),
		class:   StageNode,
		Kind:    kind,
		Params:  params,
		Key:     key,
		Hash:    hashKey(key),
		parents: parents,
		facts:   facts,
	}
	d.nodes = append(d.nodes, n)
	d.byKey[key] = n
	for _, p := range parents {
		p.children = append(p.children, n)
	}
	return n, true
}

// stageKey renders a stage node's canonical structural key:
// kind(param=value, ...)(parentKey;parentKey;...). The rendering matches
// the merged interpreter's historical per-node signature so both agree on
// what "structurally identical" means.
func stageKey(kind core.AlgorithmKind, params core.Params, parents []*DAGNode) string {
	var b strings.Builder
	b.WriteString(core.Stage{Kind: kind, Params: params}.String())
	b.WriteByte('(')
	for _, p := range parents {
		b.WriteString(p.Key)
		b.WriteByte(';')
	}
	b.WriteByte(')')
	return b.String()
}

// hashKey is the stable structural hash: 64-bit FNV-1a over the canonical
// key bytes.
func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return h.Sum64()
}

// Validate checks the graph's structural invariants: parent IDs strictly
// precede child IDs (which proves acyclicity — creation order is a
// topological order), edges are symmetric, and keys are unique.
func (d *DAG) Validate() error {
	keys := make(map[string]int, len(d.nodes))
	for i, n := range d.nodes {
		if n.id != i {
			return fmt.Errorf("ir: dag node %d carries id %d", i, n.id)
		}
		if prev, dup := keys[n.Key]; dup {
			return fmt.Errorf("ir: dag nodes %d and %d share key %q", prev, i, n.Key)
		}
		keys[n.Key] = i
		for _, p := range n.parents {
			if p.id >= n.id {
				return fmt.Errorf("ir: dag node %d has parent %d out of topological order", n.id, p.id)
			}
			if !hasChild(p, n) {
				return fmt.Errorf("ir: dag edge %d->%d missing child back-link", p.id, n.id)
			}
		}
		for _, c := range n.children {
			if c.id <= n.id {
				return fmt.Errorf("ir: dag node %d has child %d out of topological order", n.id, c.id)
			}
		}
		if n.class == SourceNode && len(n.parents) > 0 {
			return fmt.Errorf("ir: source node %d has parents", n.id)
		}
	}
	return nil
}

func hasChild(p, n *DAGNode) bool {
	for _, c := range p.children {
		if c == n {
			return true
		}
	}
	return false
}
