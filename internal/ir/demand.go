package ir

import (
	"sort"

	"sidewinder/internal/core"
)

// Static demand analysis over the compiled DAG. The scheduler bills a
// resident set by the graph it would actually execute: structurally
// identical subgraphs — shared prefixes, shared interior stages, whole
// duplicate pipelines — are billed once, and the folding/fusion rewrites
// shrink the bill further. Analysis works on the DAG before lowering
// (facts are carried over from the validated plan nodes), so it needs no
// catalog and allocates nothing per call beyond the per-plan graph walk.

// NodeDemand is one surviving DAG node's contribution to the bill.
type NodeDemand struct {
	// Key is the node's canonical structural identity; equal keys across
	// plans mean one shared instance.
	Key  string
	Kind core.AlgorithmKind
	// FloatOpsPerSec and IntOpsPerSec are cost × invocation rate.
	FloatOpsPerSec float64
	IntOpsPerSec   float64
	// MemoryBytes is the instance state.
	MemoryBytes int
}

// AnalyzePlan compiles one plan through the DAG pass (no lowering) and
// returns its surviving nodes' demand in topological order.
func AnalyzePlan(opts CompileOptions, plan *core.Plan) []NodeDemand {
	d, outs, _ := buildDAG(opts, []*core.Plan{plan})
	return demandNodes(d, outs)
}

// Demand computes the deduplicated demand of a resident plan set: the sum
// over the shared graph's surviving nodes of cost × rate, and their
// instance memory.
func Demand(opts CompileOptions, plans ...*core.Plan) (floatOpsPerSec, intOpsPerSec float64, memoryBytes int) {
	d, outs, _ := buildDAG(opts, plans)
	for _, nd := range demandNodes(d, outs) {
		floatOpsPerSec += nd.FloatOpsPerSec
		intOpsPerSec += nd.IntOpsPerSec
		memoryBytes += nd.MemoryBytes
	}
	return floatOpsPerSec, intOpsPerSec, memoryBytes
}

// demandNodes walks the graph in creation (= topological, = first
// occurrence) order and emits one entry per reachable stage node.
func demandNodes(d *DAG, outs []*DAGNode) []NodeDemand {
	reach := make(map[*DAGNode]bool)
	var mark func(*DAGNode)
	mark = func(n *DAGNode) {
		if reach[n] {
			return
		}
		reach[n] = true
		for _, p := range n.Parents() {
			mark(p)
		}
	}
	for _, o := range outs {
		mark(o)
	}
	var out []NodeDemand
	for _, n := range d.Nodes() {
		if n.Class() != StageNode || !reach[n] {
			continue
		}
		out = append(out, NodeDemand{
			Key:            n.Key,
			Kind:           n.Kind,
			FloatOpsPerSec: n.Cost().FloatOps * n.Rate(),
			IntOpsPerSec:   n.Cost().IntOps * n.Rate(),
			MemoryBytes:    n.Memory(),
		})
	}
	return out
}

// DemandAccumulator prices plans incrementally against a committed set:
// Marginal returns what a plan would add (nodes whose keys the committed
// set already contains cost zero), Commit adds it. The totals always
// equal Demand over the committed plans to within float associativity.
type DemandAccumulator struct {
	opts           CompileOptions
	seen           map[string]bool
	cache          map[*core.Plan][]NodeDemand
	floatOpsPerSec float64
	intOpsPerSec   float64
	memoryBytes    int
}

// NewDemandAccumulator returns an empty accumulator billing under the
// given compile options.
func NewDemandAccumulator(opts CompileOptions) *DemandAccumulator {
	return &DemandAccumulator{
		opts:  opts,
		seen:  make(map[string]bool),
		cache: make(map[*core.Plan][]NodeDemand),
	}
}

// analyze returns the plan's demand nodes, memoized per plan pointer (an
// admission controller re-prices the same registered plans on every
// recompute).
func (a *DemandAccumulator) analyze(plan *core.Plan) []NodeDemand {
	if nd, ok := a.cache[plan]; ok {
		return nd
	}
	nd := AnalyzePlan(a.opts, plan)
	a.cache[plan] = nd
	return nd
}

// Marginal returns the additional demand the plan would add on top of the
// committed set, without committing it.
func (a *DemandAccumulator) Marginal(plan *core.Plan) (floatOpsPerSec, intOpsPerSec float64, memoryBytes int) {
	for _, nd := range a.analyze(plan) {
		if a.seen[nd.Key] {
			continue
		}
		floatOpsPerSec += nd.FloatOpsPerSec
		intOpsPerSec += nd.IntOpsPerSec
		memoryBytes += nd.MemoryBytes
	}
	return floatOpsPerSec, intOpsPerSec, memoryBytes
}

// Commit adds the plan to the committed set and returns the accumulated
// totals.
func (a *DemandAccumulator) Commit(plan *core.Plan) (floatOpsPerSec, intOpsPerSec float64, memoryBytes int) {
	for _, nd := range a.analyze(plan) {
		if a.seen[nd.Key] {
			continue
		}
		a.seen[nd.Key] = true
		a.floatOpsPerSec += nd.FloatOpsPerSec
		a.intOpsPerSec += nd.IntOpsPerSec
		a.memoryBytes += nd.MemoryBytes
	}
	return a.floatOpsPerSec, a.intOpsPerSec, a.memoryBytes
}

// Total returns the committed set's demand.
func (a *DemandAccumulator) Total() (floatOpsPerSec, intOpsPerSec float64, memoryBytes int) {
	return a.floatOpsPerSec, a.intOpsPerSec, a.memoryBytes
}

// KindDemand is the deduplicated demand attributed to one algorithm kind.
type KindDemand struct {
	Kind core.AlgorithmKind
	// Nodes counts the distinct shared instances of this kind.
	Nodes          int
	FloatOpsPerSec float64
	IntOpsPerSec   float64
	MemoryBytes    int
}

// DemandByKind breaks Demand down per algorithm kind, kind-sorted. The
// per-kind columns sum to exactly what Demand returns for the same plans.
func DemandByKind(opts CompileOptions, plans ...*core.Plan) []KindDemand {
	d, outs, _ := buildDAG(opts, plans)
	byKind := make(map[core.AlgorithmKind]*KindDemand)
	for _, nd := range demandNodes(d, outs) {
		kd := byKind[nd.Kind]
		if kd == nil {
			kd = &KindDemand{Kind: nd.Kind}
			byKind[nd.Kind] = kd
		}
		kd.Nodes++
		kd.FloatOpsPerSec += nd.FloatOpsPerSec
		kd.IntOpsPerSec += nd.IntOpsPerSec
		kd.MemoryBytes += nd.MemoryBytes
	}
	out := make([]KindDemand, 0, len(byKind))
	for _, kd := range byKind {
		out = append(out, *kd)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kind < out[j].Kind })
	return out
}
