package ir

import (
	"fmt"
	"sort"
	"strings"

	"sidewinder/internal/core"
)

// Graph renders a validated plan as the paper's conceptual representation
// (Fig. 2b): an indented tree from OUT back to the sensor channels, showing
// how branches merge. Shared upstream nodes referenced more than once are
// expanded the first time and referenced by ID afterwards.
//
//	OUT
//	└─ [5] minThreshold(min=15, sustain=1)
//	   └─ [4] vectorMagnitude
//	      ├─ [1] movingAvg(size=10) ← ACC_X
//	      ├─ [2] movingAvg(size=10) ← ACC_Y
//	      └─ [3] movingAvg(size=10) ← ACC_Z
func Graph(plan *core.Plan) string {
	var b strings.Builder
	if plan.Name != "" {
		fmt.Fprintf(&b, "pipeline: %s\n", plan.Name)
	}
	b.WriteString("OUT\n")
	seen := make(map[int]bool)
	renderNode(&b, plan, plan.OutputNode(), "", true, seen)
	return b.String()
}

func renderNode(b *strings.Builder, plan *core.Plan, id int, prefix string, last bool, seen map[int]bool) {
	n := plan.Node(id)
	connector := "├─ "
	childPrefix := prefix + "│  "
	if last {
		connector = "└─ "
		childPrefix = prefix + "   "
	}

	label := core.Stage{Kind: n.Kind, Params: n.Params}.String()
	// Inline the sensor sources of this node on the same line.
	var chans []string
	var nodeInputs []int
	for _, in := range n.Inputs {
		if in.FromChannel() {
			chans = append(chans, string(in.Channel))
		} else {
			nodeInputs = append(nodeInputs, in.Node)
		}
	}
	line := fmt.Sprintf("%s%s[%d] %s", prefix, connector, n.ID, label)
	if len(chans) > 0 {
		line += " ← " + strings.Join(chans, ", ")
	}
	if seen[id] {
		fmt.Fprintf(b, "%s%s[%d] (shared, shown above)\n", prefix, connector, n.ID)
		return
	}
	seen[id] = true
	b.WriteString(line)
	b.WriteByte('\n')

	sort.Ints(nodeInputs)
	for i, up := range nodeInputs {
		renderNode(b, plan, up, childPrefix, i == len(nodeInputs)-1, seen)
	}
}
