package ir

import (
	"os"
	"path/filepath"
	"testing"

	"sidewinder/internal/core"
)

// FuzzParse hammers the IR text parser with arbitrary input. Invariants:
//
//   - Parse never panics, whatever the bytes;
//   - an accepted program re-encodes to a canonical form that parses
//     again and is a fixed point (Encode∘Parse∘Encode = Encode), so a
//     hub and a phone that exchange re-encoded programs always agree;
//   - binding an accepted program never panics either (it may fail).
//
// The seed corpus is the six golden applications plus hand-picked edge
// shapes; go test runs the corpus as regular tests, and `make fuzz`
// explores beyond it for a fixed budget.
func FuzzParse(f *testing.F) {
	golden, err := filepath.Glob(filepath.Join("..", "apps", "testdata", "*.ir"))
	if err != nil {
		f.Fatal(err)
	}
	if len(golden) == 0 {
		f.Fatal("no golden IR programs found")
	}
	for _, path := range golden {
		text, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(text))
	}
	f.Add("")
	f.Add("# pipeline: edge\nMIC -> OUT;")
	f.Add("ACC_X -> movingAvg(id=1, params={3}); 1 -> OUT;")
	f.Add("ACC_X -> movingAvg(id=1, params={+07e1}); 1 -> OUT;")
	f.Add("1 -> window(id=1, params={8, 0, hamming}); 1 -> OUT")
	f.Add("MIC -> stat(id=999999999999, params={stddev});")

	cat := core.DefaultCatalog()
	f.Fuzz(func(t *testing.T, text string) {
		if len(text) > 64<<10 {
			return // bound worst-case parse time, not interesting
		}
		prog, err := Parse(text)
		if err != nil {
			return
		}
		enc := Encode(prog)
		prog2, err := Parse(enc)
		if err != nil {
			t.Fatalf("re-parse of accepted program failed: %v\nencoded:\n%s", err, enc)
		}
		if enc2 := Encode(prog2); enc2 != enc {
			t.Fatalf("canonical form unstable:\n--- first\n%s\n--- second\n%s", enc, enc2)
		}
		// Binding must never panic; acceptance is catalog-dependent.
		if plan, err := Bind(prog, cat); err == nil {
			// A bound plan must survive the compiler round trip too.
			if _, err := ParseAndBind(CompileToText(plan), cat); err != nil {
				t.Fatalf("compile of bound plan does not re-bind: %v", err)
			}
		}
	})
}
