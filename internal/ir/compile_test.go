package ir

import (
	"strings"
	"testing"

	"sidewinder/internal/core"
)

// Unit tests for the DAG compile pass's individual rewrites. The
// end-to-end guarantee — that none of these change observable wakes — is
// pinned by TestDAGLinearEquivalence in package interp; here we pin that
// each rewrite actually fires on the shapes it claims, and only there.

func mustValidate(t *testing.T, p *core.Pipeline) *core.Plan {
	t.Helper()
	plan, err := p.Validate(core.DefaultCatalog())
	if err != nil {
		t.Fatalf("%s: %v", p.Name(), err)
	}
	return plan
}

func mustCompile(t *testing.T, opts CompileOptions, p *core.Pipeline) (*core.Plan, CompileStats) {
	t.Helper()
	plan, stats, err := CompilePlan(core.DefaultCatalog(), opts, mustValidate(t, p))
	if err != nil {
		t.Fatalf("%s: compile: %v", p.Name(), err)
	}
	return plan, stats
}

func kinds(p *core.Plan) []core.AlgorithmKind {
	out := make([]core.AlgorithmKind, len(p.Nodes))
	for i, n := range p.Nodes {
		out[i] = n.Kind
	}
	return out
}

func TestWindowStepCanonicalization(t *testing.T) {
	// step=0 and step=size are the same tumbling window by catalog
	// definition; canonicalization must make the two spellings one node
	// across plans.
	mk := func(name string, step int) *core.Pipeline {
		p := core.NewPipeline(name)
		p.AddBranch(core.NewBranch(core.Mic).
			Add(core.Window(32, step, "rectangular")).
			Add(core.Stat("rms")).
			Add(core.MinThreshold(0.5)))
		return p
	}
	a, b := mustValidate(t, mk("implicit", 0)), mustValidate(t, mk("explicit", 32))
	sp, err := CompilePlans(core.DefaultCatalog(), CompileOptions{}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Stats.CanonNodes != 1 {
		t.Fatalf("canonicalized %d nodes, want 1 (the step=0 window)", sp.Stats.CanonNodes)
	}
	if got, want := sp.Stats.Eliminated(), len(b.Nodes); got != want {
		t.Fatalf("eliminated %d nodes, want the whole duplicate pipeline (%d)", got, want)
	}
	if sp.Outputs[0].Out != sp.Outputs[1].Out {
		t.Fatalf("outputs %d and %d should share one node", sp.Outputs[0].Out, sp.Outputs[1].Out)
	}
	if step := sp.Plan.Nodes[0].Params.Int("step"); step != 32 {
		t.Fatalf("lowered window step = %d, want canonical 32", step)
	}
	// With folding ablated the spellings stay distinct.
	spNF, err := CompilePlans(core.DefaultCatalog(), CompileOptions{NoFold: true}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if spNF.Stats.Eliminated() != 0 {
		t.Fatalf("NoFold still eliminated %d nodes", spNF.Stats.Eliminated())
	}
}

func TestAbsAbsFold(t *testing.T) {
	p := core.NewPipeline("abs-abs")
	p.AddBranch(core.NewBranch(core.AccelX).
		Add(core.Abs()).
		Add(core.Abs()).
		Add(core.MinThreshold(1)))
	compiled, stats := mustCompile(t, CompileOptions{}, p)
	if stats.FoldedNodes != 1 {
		t.Fatalf("folded %d nodes, want 1", stats.FoldedNodes)
	}
	want := []core.AlgorithmKind{core.KindAbs, core.KindMinThreshold}
	if got := kinds(compiled); len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("lowered kinds %v, want %v", got, want)
	}
}

func TestAndDuplicateInputCollapse(t *testing.T) {
	// Two structurally identical branches: CSE makes the and's inputs the
	// same node, dedup drops the duplicate, and the single-input and
	// collapses away entirely.
	p := core.NewPipeline("and-dup")
	for i := 0; i < 2; i++ {
		p.AddBranch(core.NewBranch(core.AccelY).
			Add(core.MovingAverage(4)).
			Add(core.MinThreshold(2)))
	}
	p.Add(core.And())
	p.Add(core.MinThresholdSustained(2, 3)) // sustain=3 blocks fusion; isolates the fold
	compiled, stats := mustCompile(t, CompileOptions{}, p)
	if stats.FoldedNodes != 1 {
		t.Fatalf("folded %d nodes, want 1 (the and collapse)", stats.FoldedNodes)
	}
	for _, k := range kinds(compiled) {
		if k == core.KindAnd {
			t.Fatalf("and survived the collapse: %v", kinds(compiled))
		}
	}
	// 6 plan nodes -> movingAvg, minThreshold, sustained gate.
	if len(compiled.Nodes) != 3 {
		t.Fatalf("lowered %d nodes, want 3: %v", len(compiled.Nodes), kinds(compiled))
	}
}

func TestAndInputOrderCanonical(t *testing.T) {
	// and is the one exactly-commutative aggregator (it emits the minimum
	// of its synchronized inputs), so and(A,B) and and(B,A) must share.
	branch := func(thr float64) *core.Branch {
		return core.NewBranch(core.AccelZ).
			Add(core.MovingAverage(8)).
			Add(core.MinThreshold(thr))
	}
	mk := func(name string, first, second float64) *core.Pipeline {
		p := core.NewPipeline(name)
		p.AddBranch(branch(first))
		p.AddBranch(branch(second))
		p.Add(core.And())
		p.Add(core.MinThresholdSustained(1, 2))
		return p
	}
	a, b := mustValidate(t, mk("ab", 1, 3)), mustValidate(t, mk("ba", 3, 1))
	sp, err := CompilePlans(core.DefaultCatalog(), CompileOptions{}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Plan a already shares its movingAvg prefix across its two branches;
	// on top of that intra-plan elimination, all of b must collapse onto a.
	_, soloStats, err := CompilePlan(core.DefaultCatalog(), CompileOptions{}, mustValidate(t, mk("solo", 1, 3)))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := sp.Stats.Eliminated(), soloStats.Eliminated()+len(b.Nodes); got != want {
		t.Fatalf("eliminated %d nodes, want %d: and(A,B) must equal and(B,A)", got, want)
	}
	if sp.Outputs[0].Out != sp.Outputs[1].Out {
		t.Fatal("swapped-input and pipelines should share their output node")
	}
}

func TestThresholdFusion(t *testing.T) {
	chain := func(name string, stages ...core.Stage) *core.Pipeline {
		p := core.NewPipeline(name)
		b := core.NewBranch(core.AccelX).Add(core.MovingAverage(4))
		for _, s := range stages {
			b.Add(s)
		}
		p.AddBranch(b)
		return p
	}
	cases := []struct {
		name      string
		pipe      *core.Pipeline
		fused     int
		lastKind  core.AlgorithmKind
		wantParam map[string]float64
	}{
		{
			name:      "min-min keeps larger bound",
			pipe:      chain("minmin", core.MinThreshold(2), core.MinThreshold(5)),
			fused:     1,
			lastKind:  core.KindMinThreshold,
			wantParam: map[string]float64{"min": 5},
		},
		{
			name:      "max-max keeps smaller bound",
			pipe:      chain("maxmax", core.MaxThreshold(5), core.MaxThreshold(2)),
			fused:     1,
			lastKind:  core.KindMaxThreshold,
			wantParam: map[string]float64{"max": 2},
		},
		{
			name:      "band-band intersects",
			pipe:      chain("bandband", core.BandThreshold(1, 6), core.BandThreshold(3, 9)),
			fused:     1,
			lastKind:  core.KindBandThreshold,
			wantParam: map[string]float64{"min": 3, "max": 6},
		},
		{
			name:      "transitive chain fuses to one gate",
			pipe:      chain("minminmin", core.MinThreshold(1), core.MinThreshold(4), core.MinThreshold(3)),
			fused:     2,
			lastKind:  core.KindMinThreshold,
			wantParam: map[string]float64{"min": 4},
		},
		{
			name:     "empty band intersection stays unfused",
			pipe:     chain("bandempty", core.BandThreshold(1, 2), core.BandThreshold(5, 6)),
			fused:    0,
			lastKind: core.KindBandThreshold,
		},
		{
			name:     "sustained gate blocks fusion",
			pipe:     chain("sustained", core.MinThresholdSustained(2, 3), core.MinThreshold(5)),
			fused:    0,
			lastKind: core.KindMinThreshold,
		},
		{
			name:     "mixed kinds stay unfused",
			pipe:     chain("mixed", core.MinThreshold(2), core.MaxThreshold(5)),
			fused:    0,
			lastKind: core.KindMaxThreshold,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			compiled, stats := mustCompile(t, CompileOptions{}, tc.pipe)
			if stats.FusedNodes != tc.fused {
				t.Fatalf("fused %d, want %d", stats.FusedNodes, tc.fused)
			}
			last := compiled.Nodes[len(compiled.Nodes)-1]
			if last.Kind != tc.lastKind {
				t.Fatalf("final kind %s, want %s", last.Kind, tc.lastKind)
			}
			for name, want := range tc.wantParam {
				if got := last.Params.Float(name); got != want {
					t.Fatalf("fused %s = %g, want %g", name, got, want)
				}
			}
			// Each fusion removes exactly one gate from the lowered plan
			// (as a pruned intermediate, or by hash-consing onto an
			// already-fused node in transitive chains).
			if stats.Eliminated() != tc.fused {
				t.Fatalf("eliminated %d, want %d", stats.Eliminated(), tc.fused)
			}
			// Ablation: NoFuse leaves the chain intact.
			unfused, nfStats := mustCompile(t, CompileOptions{NoFuse: true}, tc.pipe)
			if nfStats.FusedNodes != 0 {
				t.Fatalf("NoFuse still fused %d", nfStats.FusedNodes)
			}
			if len(unfused.Nodes) < len(compiled.Nodes) {
				t.Fatal("NoFuse lowered fewer nodes than the fused plan")
			}
		})
	}
}

func TestCompileFixpoint(t *testing.T) {
	// Recompiling a compiled plan must be the identity: all rewrites
	// reached their fixpoint in one pass.
	p := core.NewPipeline("fixpoint")
	for i := 0; i < 2; i++ {
		p.AddBranch(core.NewBranch(core.Mic).
			Add(core.Window(64, 0, "rectangular")).
			Add(core.Stat("variance")).
			Add(core.MinThreshold(0.1)))
	}
	p.Add(core.And())
	p.Add(core.MinThreshold(0.2))
	compiled, stats := mustCompile(t, CompileOptions{}, p)
	if stats.Eliminated() == 0 {
		t.Fatal("test pipeline should shrink on first compile")
	}
	again, stats2, err := CompilePlan(core.DefaultCatalog(), CompileOptions{}, compiled)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Eliminated() != 0 || stats2.FoldedNodes != 0 || stats2.FusedNodes != 0 || stats2.CanonNodes != 0 {
		t.Fatalf("recompile not a fixpoint: %s", stats2)
	}
	if got, want := CompileToText(again), CompileToText(compiled); got != want {
		t.Fatalf("recompile changed the program:\n--- first\n%s--- second\n%s", want, got)
	}
}

func TestCompileStatsString(t *testing.T) {
	s := CompileStats{InNodes: 7, OutNodes: 5, SharedNodes: 1, FoldedNodes: 1, CanonNodes: 2}
	str := s.String()
	for _, frag := range []string{"7 -> 5", "1 shared", "1 folded", "0 fused", "2 canonicalized"} {
		if !strings.Contains(str, frag) {
			t.Fatalf("stats %q missing %q", str, frag)
		}
	}
	if s.Eliminated() != 2 {
		t.Fatalf("eliminated = %d, want 2", s.Eliminated())
	}
	if !NoOpt().Ablated() {
		t.Fatal("NoOpt must report Ablated")
	}
	if (CompileOptions{}).Ablated() {
		t.Fatal("default options must not report Ablated")
	}
}

func TestCompilePlansRejectsEmpty(t *testing.T) {
	if _, err := CompilePlans(core.DefaultCatalog(), CompileOptions{}); err == nil {
		t.Fatal("compiling zero plans should fail")
	}
}

func TestSharedPlanGraphInvariants(t *testing.T) {
	// The underlying DAG of a multi-plan compile must validate: ids
	// topological (acyclic), edges symmetric, keys unique — and the
	// structural hashes must be stable across independent compiles.
	mk := func() []*core.Plan {
		var plans []*core.Plan
		a := core.NewPipeline("a")
		a.AddBranch(core.NewBranch(core.Mic).
			Add(core.Window(32, 0, "hamming")).
			Add(core.Stat("rms")).
			Add(core.MinThreshold(0.3)))
		b := core.NewPipeline("b")
		b.AddBranch(core.NewBranch(core.Mic).
			Add(core.Window(32, 32, "hamming")).
			Add(core.Stat("rms")).
			Add(core.MaxThreshold(0.9)))
		for _, p := range []*core.Pipeline{a, b} {
			plans = append(plans, mustValidate(t, p))
		}
		return plans
	}
	sp1, err := CompilePlans(core.DefaultCatalog(), CompileOptions{}, mk()...)
	if err != nil {
		t.Fatal(err)
	}
	if err := sp1.Graph.Validate(); err != nil {
		t.Fatalf("graph invariants: %v", err)
	}
	sp2, err := CompilePlans(core.DefaultCatalog(), CompileOptions{}, mk()...)
	if err != nil {
		t.Fatal(err)
	}
	if len(sp1.Keys) != len(sp2.Keys) {
		t.Fatalf("key count %d vs %d across identical compiles", len(sp1.Keys), len(sp2.Keys))
	}
	for i := range sp1.Keys {
		if sp1.Keys[i] != sp2.Keys[i] || sp1.Hashes[i] != sp2.Hashes[i] {
			t.Fatalf("structural identity unstable at node %d: %q/%x vs %q/%x",
				i, sp1.Keys[i], sp1.Hashes[i], sp2.Keys[i], sp2.Hashes[i])
		}
	}
	// The two plans share window+stat: both outputs must not share, but
	// the prefix must.
	if sp1.Outputs[0].Out == sp1.Outputs[1].Out {
		t.Fatal("different thresholds must not share an output node")
	}
	if sp1.Stats.SharedNodes != 2 {
		t.Fatalf("shared %d nodes, want 2 (window and stat)", sp1.Stats.SharedNodes)
	}
}

func TestSharedPlanDot(t *testing.T) {
	a := core.NewPipeline("alpha")
	a.AddBranch(core.NewBranch(core.Mic).
		Add(core.Window(32, 0, "rectangular")).
		Add(core.Stat("rms")).
		Add(core.MinThreshold(0.3)))
	b := core.NewPipeline("beta")
	b.AddBranch(core.NewBranch(core.Mic).
		Add(core.Window(32, 0, "rectangular")).
		Add(core.Stat("rms")).
		Add(core.MaxThreshold(0.9)))
	sp, err := CompilePlans(core.DefaultCatalog(), CompileOptions{}, mustValidate(t, a), mustValidate(t, b))
	if err != nil {
		t.Fatal(err)
	}
	dot := sp.Dot()
	for _, frag := range []string{
		"digraph", "ch_MIC", "window", "stat", "minThreshold", "maxThreshold",
		"OUT alpha", "OUT beta", "fillcolor=lightblue", "doubleoctagon",
	} {
		if !strings.Contains(dot, frag) {
			t.Fatalf("dot output missing %q:\n%s", frag, dot)
		}
	}
}
