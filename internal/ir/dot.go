package ir

import (
	"fmt"
	"strings"
)

// Graphviz export of a compiled shared plan. The rendering is the lowered
// graph — what the hub actually executes and the scheduler actually bills
// — so a node consumed by several apps (or several times by one app)
// appears once, with every edge drawn into it.
//
// Recipe:
//
//	swc -dot condition.json | dot -Tsvg -o plan.svg
//	swc -apps -dot          | dot -Tpng -o catalog.png   # all six apps, shared
//
// Channels render as boxes, stages as ellipses labeled with the stage
// spelling, the node ID and the first 8 hex digits of the structural
// hash; nodes shared by more than one consumer are filled, and each app's
// OUT is a doubled octagon.

// Dot renders the shared plan in Graphviz dot syntax.
func (sp *SharedPlan) Dot() string {
	var b strings.Builder
	b.WriteString("digraph sharedplan {\n")
	fmt.Fprintf(&b, "  label=%q;\n", sp.Plan.Name)
	b.WriteString("  rankdir=TB;\n")
	b.WriteString("  node [fontsize=10];\n")

	for _, ch := range sp.Plan.Channels {
		fmt.Fprintf(&b, "  %q [shape=box, style=bold, label=%q];\n", "ch_"+string(ch), string(ch))
	}

	// Fan-out per node: >1 consumers (or any multi-app OUT) marks the
	// node as shared.
	consumers := make([]int, len(sp.Plan.Nodes)+1)
	for i := range sp.Plan.Nodes {
		for _, ref := range sp.Plan.Nodes[i].Inputs {
			if !ref.FromChannel() {
				consumers[ref.Node]++
			}
		}
	}
	for _, o := range sp.Outputs {
		consumers[o.Out]++
	}

	for i := range sp.Plan.Nodes {
		n := &sp.Plan.Nodes[i]
		label := fmt.Sprintf("%s\\nid=%d #%08x", n.Kind, n.ID, uint32(sp.Hashes[i]>>32))
		attrs := fmt.Sprintf("shape=ellipse, label=%q", label)
		if consumers[n.ID] > 1 {
			attrs += ", style=filled, fillcolor=lightblue"
		}
		fmt.Fprintf(&b, "  n%d [%s];\n", n.ID, attrs)
		for port, ref := range n.Inputs {
			var from string
			if ref.FromChannel() {
				from = fmt.Sprintf("%q", "ch_"+string(ref.Channel))
			} else {
				from = fmt.Sprintf("n%d", ref.Node)
			}
			if len(n.Inputs) > 1 {
				fmt.Fprintf(&b, "  %s -> n%d [label=\"p%d\"];\n", from, n.ID, port)
			} else {
				fmt.Fprintf(&b, "  %s -> n%d;\n", from, n.ID)
			}
		}
	}

	for _, o := range sp.Outputs {
		id := "out_" + o.Name
		fmt.Fprintf(&b, "  %q [shape=doubleoctagon, label=%q];\n", id, "OUT "+o.Name)
		fmt.Fprintf(&b, "  n%d -> %q;\n", o.Out, id)
	}
	b.WriteString("}\n")
	return b.String()
}
