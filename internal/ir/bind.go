package ir

import (
	"fmt"

	"sidewinder/internal/core"
)

// Bind validates a parsed program against a platform catalog and resolves
// it into an executable plan. It is the hub-side counterpart of
// core.Pipeline.Validate: the same arity, kind, parameter, and rate rules
// apply, so a program either binds identically on every conforming hub or
// fails with a diagnostic.
//
// Bind requires canonical node numbering (IDs 1..n in definition order),
// which is what the sensor manager's compiler emits; this keeps the
// microcontroller-side implementation a single pass with array-indexed
// instance lookup.
func Bind(prog *Program, cat *core.Catalog) (*core.Plan, error) {
	plan := &core.Plan{Name: prog.Name}
	outputs := make(map[int]core.ResolvedInput)
	consumed := make(map[int]bool)
	seenChannels := make(map[core.SensorChannel]bool)
	sawOut := false

	for i, in := range prog.Instrs {
		if in.Out {
			if i != len(prog.Instrs)-1 {
				return nil, fmt.Errorf("ir: OUT must be the final statement")
			}
			sawOut = true
			src := in.Sources[0]
			if _, ok := outputs[src.Node]; !ok {
				return nil, fmt.Errorf("ir: OUT references undefined node %d", src.Node)
			}
			if outputs[src.Node].Kind != core.Scalar {
				return nil, fmt.Errorf("ir: OUT is fed a %s; the wake-up signal must be scalar", outputs[src.Node].Kind)
			}
			consumed[src.Node] = true
			continue
		}
		if in.ID != i+1 {
			return nil, fmt.Errorf("ir: node id %d out of sequence (expected %d); the compiler numbers nodes 1..n in definition order", in.ID, i+1)
		}
		meta, err := cat.Get(in.Op)
		if err != nil {
			return nil, fmt.Errorf("ir: node %d: %w", in.ID, err)
		}
		if len(in.Params) > len(meta.Params) {
			return nil, fmt.Errorf("ir: node %d: %s takes at most %d parameters, got %d", in.ID, in.Op, len(meta.Params), len(in.Params))
		}
		raw := make(core.Params, len(in.Params))
		for j, v := range in.Params {
			raw[meta.Params[j].Name] = v
		}
		inputs := make([]core.ResolvedInput, len(in.Sources))
		for j, src := range in.Sources {
			if src.FromChannel() {
				inputs[j] = core.ChannelInput(src.Channel)
				if !seenChannels[src.Channel] {
					seenChannels[src.Channel] = true
					plan.Channels = append(plan.Channels, src.Channel)
				}
				continue
			}
			out, ok := outputs[src.Node]
			if !ok {
				return nil, fmt.Errorf("ir: node %d references undefined node %d", in.ID, src.Node)
			}
			consumed[src.Node] = true
			inputs[j] = out
		}
		node, err := core.ResolveNode(cat, in.ID, in.Op, raw, inputs)
		if err != nil {
			return nil, fmt.Errorf("ir: node %d: %w", in.ID, err)
		}
		plan.Nodes = append(plan.Nodes, node)
		outputs[node.ID] = node.Output()
	}

	if !sawOut {
		return nil, fmt.Errorf("ir: program has no OUT statement")
	}
	if len(plan.Nodes) == 0 {
		return nil, fmt.Errorf("ir: program defines no algorithm instances")
	}
	for id := range outputs {
		if !consumed[id] {
			return nil, fmt.Errorf("ir: node %d output is never consumed; every branch must flow to OUT (paper §3.2)", id)
		}
	}
	return plan, nil
}

// ParseAndBind is the hub runtime's single entry point: parse IR text and
// bind it against the hub's catalog.
func ParseAndBind(text string, cat *core.Catalog) (*core.Plan, error) {
	prog, err := Parse(text)
	if err != nil {
		return nil, err
	}
	return Bind(prog, cat)
}
