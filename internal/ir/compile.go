package ir

import (
	"fmt"
	"math"
	"strings"

	"sidewinder/internal/core"
)

// The DAG compile pass. It rebuilds one or more validated plans as a
// single hash-consed DAG, applying three families of rewrites, and lowers
// the result back to a core.Plan the interpreter executes directly:
//
//   - constant folding: rewrites that are bit-exact on every input.
//     Window step=0 is canonicalized to step=size (the catalog defines
//     them as the same window, so the two spellings must share); abs∘abs
//     collapses (|.| is idempotent); and-aggregations drop duplicate
//     inputs (min over a multiset equals min over its set, and the join
//     fires on exactly the same emissions), collapsing entirely when one
//     distinct input remains.
//
//   - stage fusion: consecutive same-kind admission thresholds with
//     sustain=1 fuse into one (min∘min keeps the larger bound, max∘max
//     the smaller, band∘band the intersection when non-empty). A value
//     passes the fused gate exactly when it passes the chain — including
//     in Q15, where quantization is monotone so the bound algebra
//     commutes with the grid.
//
//   - cross-app common-subgraph elimination: hash-consing over the
//     canonical structural keys makes any two identical (stage, params,
//     upstream) subgraphs — within one app or across resident apps — one
//     node, executed and billed once.
//
// Every rewrite preserves observable wakes bit-for-bit; only the executed
// and billed work shrinks. TestDAGLinearEquivalence (package interp) pins
// that end to end.

// CompileOptions selects which rewrite families run. The zero value runs
// everything; the No* switches are ablation knobs for tests and the
// fleet's CSE-off comparison.
type CompileOptions struct {
	// NoCSE suppresses hash-consing: every plan node lowers to its own
	// instance (duplicate work executes and bills per app).
	NoCSE bool
	// NoFold suppresses constant folding and parameter canonicalization.
	NoFold bool
	// NoFuse suppresses threshold fusion.
	NoFuse bool
}

// Ablated reports whether every rewrite family is disabled — the linear
// baseline the equivalence tests compare against.
func (o CompileOptions) Ablated() bool { return o.NoCSE && o.NoFold && o.NoFuse }

// NoOpt returns the options that disable every rewrite.
func NoOpt() CompileOptions { return CompileOptions{NoCSE: true, NoFold: true, NoFuse: true} }

// CompileStats reports what the pass did.
type CompileStats struct {
	// InNodes counts the plan nodes fed in (across all plans).
	InNodes int
	// OutNodes counts the lowered shared-plan nodes.
	OutNodes int
	// SharedNodes counts hash-cons hits: plan nodes that mapped onto an
	// already existing structurally identical node.
	SharedNodes int
	// FoldedNodes counts constant folds (abs∘abs, and-input dedup and
	// collapse).
	FoldedNodes int
	// FusedNodes counts threshold fusions.
	FusedNodes int
	// CanonNodes counts nodes whose parameters were rewritten to
	// canonical form (window step=0 → step=size).
	CanonNodes int
	// PrunedNodes counts stage nodes left unreachable by rewrites
	// (e.g. a fused-away intermediate threshold) and dropped at lowering.
	PrunedNodes int
}

// Eliminated is the number of plan nodes the pass removed.
func (s CompileStats) Eliminated() int { return s.InNodes - s.OutNodes }

// String renders the stats one-line for reports.
func (s CompileStats) String() string {
	return fmt.Sprintf("%d -> %d nodes (%d shared, %d folded, %d fused, %d canonicalized, %d pruned)",
		s.InNodes, s.OutNodes, s.SharedNodes, s.FoldedNodes, s.FusedNodes, s.CanonNodes, s.PrunedNodes)
}

// AppOut names one input plan's output node within the shared plan.
type AppOut struct {
	// Name is the originating plan's name.
	Name string
	// Out is the shared-plan node ID feeding this app's OUT.
	Out int
}

// SharedPlan is the compile pass's result: one merged execution plan in
// which every input plan's pipeline is a subgraph and structurally
// identical subgraphs appear once.
type SharedPlan struct {
	// Plan holds the lowered nodes in topological order with IDs 1..n,
	// fully re-resolved against the catalog. Unlike a single-pipeline
	// plan, the last node is not necessarily an output: consult Outputs.
	Plan *core.Plan
	// Outputs maps each input plan (in argument order) to its output
	// node.
	Outputs []AppOut
	// Keys and Hashes give each lowered node's canonical structural
	// identity, parallel to Plan.Nodes.
	Keys   []string
	Hashes []uint64
	// Stats reports the rewrites applied.
	Stats CompileStats
	// Sources are the input plans, in argument order.
	Sources []*core.Plan
	// Graph is the underlying DAG (including nodes later pruned), kept
	// for dot export and diagnostics.
	Graph *DAG
}

// CompilePlans runs the DAG compile pass over the resident plans and
// lowers the shared graph to one executable plan. Plans must come from
// core validation or IR binding; the pass re-resolves every lowered node
// against the catalog, so a structural error here is an internal bug, not
// user input.
func CompilePlans(cat *core.Catalog, opts CompileOptions, plans ...*core.Plan) (*SharedPlan, error) {
	if len(plans) == 0 {
		return nil, fmt.Errorf("ir: compile needs at least one plan")
	}
	d, outs, stats := buildDAG(opts, plans)

	// Reachability: rewrites can strand nodes (a fused-away threshold, a
	// collapsed and); only what some app's OUT depends on is lowered.
	reach := make(map[*DAGNode]bool)
	var mark func(*DAGNode)
	mark = func(n *DAGNode) {
		if reach[n] {
			return
		}
		reach[n] = true
		for _, p := range n.Parents() {
			mark(p)
		}
	}
	for _, o := range outs {
		mark(o)
	}

	plan := &core.Plan{Name: sharedName(plans)}
	sp := &SharedPlan{Plan: plan, Sources: plans, Graph: d}
	lowered := make(map[*DAGNode]int, d.Len()) // node -> plan ID
	seenCh := make(map[core.SensorChannel]bool)
	for _, dn := range d.Nodes() {
		if dn.Class() != StageNode {
			continue
		}
		if !reach[dn] {
			stats.PrunedNodes++
			continue
		}
		ins := make([]core.ResolvedInput, len(dn.Parents()))
		for j, p := range dn.Parents() {
			if p.Class() == SourceNode {
				if !seenCh[p.Channel] {
					seenCh[p.Channel] = true
					plan.Channels = append(plan.Channels, p.Channel)
				}
				ins[j] = core.ChannelInput(p.Channel)
			} else {
				ins[j] = plan.Nodes[lowered[p]-1].Output()
			}
		}
		pn, err := core.ResolveNode(cat, len(plan.Nodes)+1, dn.Kind, dn.Params, ins)
		if err != nil {
			return nil, fmt.Errorf("ir: lowering %s: %w", dn.Key, err)
		}
		plan.Nodes = append(plan.Nodes, pn)
		lowered[dn] = pn.ID
		sp.Keys = append(sp.Keys, dn.Key)
		sp.Hashes = append(sp.Hashes, dn.Hash)
	}
	stats.OutNodes = len(plan.Nodes)
	sp.Stats = stats
	for i, o := range outs {
		sp.Outputs = append(sp.Outputs, AppOut{Name: plans[i].Name, Out: lowered[o]})
	}
	return sp, nil
}

// CompilePlan compiles a single pipeline through the DAG pass and returns
// a plan with the standard single-pipeline invariant restored: the output
// node is last, so interp.New and ir.Compile accept it unchanged.
func CompilePlan(cat *core.Catalog, opts CompileOptions, plan *core.Plan) (*core.Plan, CompileStats, error) {
	sp, err := CompilePlans(cat, opts, plan)
	if err != nil {
		return nil, CompileStats{}, err
	}
	p, out := sp.Plan, sp.Outputs[0].Out
	if out != len(p.Nodes) {
		// Cannot happen: a single plan's lowered nodes are exactly the
		// output's ancestors in topological (creation) order, so the
		// output is always last. Guarded so a future rewrite that breaks
		// the invariant fails loudly instead of corrupting execution.
		return nil, CompileStats{}, fmt.Errorf("ir: internal: output node %d not last of %d", out, len(p.Nodes))
	}
	return p, sp.Stats, nil
}

// sharedName labels the merged plan after its constituents.
func sharedName(plans []*core.Plan) string {
	if len(plans) == 1 {
		return plans[0].Name
	}
	names := make([]string, len(plans))
	for i, p := range plans {
		names[i] = p.Name
	}
	return "shared(" + strings.Join(names, "+") + ")"
}

// buildDAG rebuilds the plans as one hash-consed DAG, applying the
// enabled rewrites node by node. Plans are processed in order and each
// plan's nodes in ID (= topological) order, so every parent already has
// its final, rewritten form when a node is built — the local rules reach
// their fixpoint in one pass. Returns the graph, each plan's output node,
// and the rewrite stats.
func buildDAG(opts CompileOptions, plans []*core.Plan) (*DAG, []*DAGNode, CompileStats) {
	d := NewDAG()
	outs := make([]*DAGNode, len(plans))
	var st CompileStats
	for pi, plan := range plans {
		local := make(map[int]*DAGNode, len(plan.Nodes))
		for i := range plan.Nodes {
			n := &plan.Nodes[i]
			st.InNodes++
			parents := make([]*DAGNode, len(n.Inputs))
			for j, ref := range n.Inputs {
				if ref.FromChannel() {
					parents[j] = d.Source(ref.Channel)
				} else {
					parents[j] = local[ref.Node]
				}
			}
			params := n.Params
			if !opts.NoFold {
				if canon := canonicalParams(n.Kind, params); canon != nil {
					params = canon
					st.CanonNodes++
				}
				if folded := foldNode(n.Kind, parents); folded != nil {
					local[n.ID] = folded
					st.FoldedNodes++
					continue
				}
				if n.Kind == core.KindAnd {
					if dd := dedupParents(parents); len(dd) < len(parents) {
						st.FoldedNodes++
						if len(dd) == 1 {
							local[n.ID] = dd[0]
							continue
						}
						parents = dd
					}
				}
			}
			if !opts.NoFuse {
				if fp, gp := fuseThreshold(n.Kind, params, parents); fp != nil {
					st.FusedNodes++
					params, parents = fp, gp
				}
			}
			nd, fresh := d.Stage(n.Kind, params, parents, nodeFacts{
				cost:    n.Cost,
				rate:    n.Rate,
				outRate: n.OutRate,
				memory:  n.Memory,
			}, opts.NoCSE)
			if !fresh {
				st.SharedNodes++
			}
			local[n.ID] = nd
		}
		outs[pi] = local[plan.OutputNode()]
	}
	return d, outs, st
}

// canonicalParams returns the canonical parameter spelling for kinds with
// redundant encodings, or nil when params are already canonical. The only
// such kind today is window: the catalog defines step=0 as "step equals
// size" (tumbling window), and every consumer — cost, memory, rate factor
// and the runtime instance — treats the two identically, so the explicit
// spelling is substituted to make the equivalent windows structurally
// equal.
func canonicalParams(kind core.AlgorithmKind, p core.Params) core.Params {
	if kind != core.KindWindow || p.Int("step") != 0 {
		return nil
	}
	c := p.Clone()
	c["step"] = core.Number(float64(p.Int("size")))
	return c
}

// foldNode applies the unary identity folds, returning the node the
// current plan node collapses onto (or nil). abs∘abs is the only one:
// |x| is idempotent, so the second abs emits its input bit-for-bit.
func foldNode(kind core.AlgorithmKind, parents []*DAGNode) *DAGNode {
	if kind == core.KindAbs && len(parents) == 1 &&
		parents[0].Class() == StageNode && parents[0].Kind == core.KindAbs {
		return parents[0]
	}
	return nil
}

// dedupParents removes duplicate inputs of an and-aggregation (identical
// nodes are pointer-equal after hash-consing). Sound and bit-exact: the
// join fires when every port has a value for an emission index —
// duplicate ports fill on the same emission — and min over a multiset
// equals min over its distinct values.
func dedupParents(parents []*DAGNode) []*DAGNode {
	out := parents[:0:0]
	for _, p := range parents {
		dup := false
		for _, q := range out {
			if p == q {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, p)
		}
	}
	return out
}

// fuseThreshold fuses a threshold whose single parent is a same-kind,
// sustain=1 threshold, returning the fused parameters and the
// grandparent inputs (or nils). The compose rules are exact on every
// input, in both precisions:
//
//	min(a)∘min(b)  = min(max(a,b))   v≥a ∧ v≥b  ⇔  v≥max(a,b)
//	max(a)∘max(b)  = max(min(a,b))   v≤a ∧ v≤b  ⇔  v≤min(a,b)
//	band∘band      = band(intersection), skipped when empty (an empty
//	                 band is unrepresentable; the unfused chain stays)
//
// Thresholds pass admitted values unchanged, so the fused gate's output
// stream is bit-identical. Q15 gates quantize their bounds and the
// compared value; quantization is monotone, so it commutes with max/min
// over the bounds and the admitted set is unchanged there too. Sustain
// counters are not composable (the second gate counts the first gate's
// emissions, not raw samples), hence the sustain=1 requirement on both.
func fuseThreshold(kind core.AlgorithmKind, params core.Params, parents []*DAGNode) (core.Params, []*DAGNode) {
	switch kind {
	case core.KindMinThreshold, core.KindMaxThreshold, core.KindBandThreshold:
	default:
		return nil, nil
	}
	if len(parents) != 1 {
		return nil, nil
	}
	par := parents[0]
	if par.Class() != StageNode || par.Kind != kind ||
		params.Int("sustain") != 1 || par.Params.Int("sustain") != 1 {
		return nil, nil
	}
	fused := params.Clone()
	switch kind {
	case core.KindMinThreshold:
		fused["min"] = core.Number(math.Max(params.Float("min"), par.Params.Float("min")))
	case core.KindMaxThreshold:
		fused["max"] = core.Number(math.Min(params.Float("max"), par.Params.Float("max")))
	case core.KindBandThreshold:
		lo := math.Max(params.Float("min"), par.Params.Float("min"))
		hi := math.Min(params.Float("max"), par.Params.Float("max"))
		if lo > hi {
			return nil, nil
		}
		fused["min"], fused["max"] = core.Number(lo), core.Number(hi)
	}
	return fused, append([]*DAGNode(nil), par.Parents()...)
}
