package ir

import (
	"math/rand"
	"testing"

	"sidewinder/internal/core"
	"sidewinder/internal/testutil"
)

// TestRandomPipelinesRoundTrip drives the full compiler stack with
// generated wake-up conditions: every valid pipeline must compile to IR,
// parse back, bind identically, and re-encode byte-for-byte (canonical
// form stability).
func TestRandomPipelinesRoundTrip(t *testing.T) {
	cat := core.DefaultCatalog()
	rng := rand.New(rand.NewSource(20260705))
	for i := 0; i < 300; i++ {
		p := testutil.RandomPipeline(rng)
		plan, err := p.Validate(cat)
		if err != nil {
			t.Fatalf("pipeline %d (%s) failed validation: %v", i, p.Name(), err)
		}
		text := CompileToText(plan)
		bound, err := ParseAndBind(text, cat)
		if err != nil {
			t.Fatalf("pipeline %d: bind failed: %v\n%s", i, err, text)
		}
		text2 := CompileToText(bound)
		if text2 != text {
			t.Fatalf("pipeline %d: canonical form unstable:\n--- compiled\n%s--- rebound\n%s", i, text, text2)
		}
		if len(bound.Nodes) != len(plan.Nodes) {
			t.Fatalf("pipeline %d: node count changed: %d -> %d", i, len(plan.Nodes), len(bound.Nodes))
		}
		for j := range plan.Nodes {
			a, b := &plan.Nodes[j], &bound.Nodes[j]
			if a.Kind != b.Kind || a.Rate != b.Rate || a.OutRate != b.OutRate ||
				a.InLen != b.InLen || a.OutLen != b.OutLen || a.Memory != b.Memory ||
				a.Cost != b.Cost {
				t.Fatalf("pipeline %d node %d: resolution differs:\n%+v\n%+v", i, j+1, a, b)
			}
		}
	}
}

// TestRandomPipelinesCostModelSane checks cost-model invariants over the
// generated space: non-negative work and memory, positive rates, and
// output rates never exceeding input rates.
func TestRandomPipelinesCostModelSane(t *testing.T) {
	cat := core.DefaultCatalog()
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 300; i++ {
		p := testutil.RandomPipeline(rng)
		plan, err := p.Validate(cat)
		if err != nil {
			t.Fatalf("pipeline %d: %v", i, err)
		}
		for _, n := range plan.Nodes {
			if n.Cost.FloatOps < 0 || n.Cost.IntOps < 0 {
				t.Fatalf("pipeline %d node %d: negative cost %+v", i, n.ID, n.Cost)
			}
			if n.Memory < 0 {
				t.Fatalf("pipeline %d node %d: negative memory %d", i, n.ID, n.Memory)
			}
			if n.Rate <= 0 {
				t.Fatalf("pipeline %d node %d: rate %g", i, n.ID, n.Rate)
			}
			if n.OutRate > n.Rate+1e-9 {
				t.Fatalf("pipeline %d node %d: out rate %g exceeds in rate %g", i, n.ID, n.OutRate, n.Rate)
			}
		}
		f, iOps := plan.TotalOpsPerSecond()
		if f < 0 || iOps < 0 {
			t.Fatalf("pipeline %d: negative totals", i)
		}
	}
}
