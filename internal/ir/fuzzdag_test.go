package ir

import (
	"math/rand"
	"testing"

	"sidewinder/internal/core"
	"sidewinder/internal/testutil"
)

// byteSource feeds fuzz input bytes to math/rand, so the fuzzer's byte
// mutations steer every decision the pipeline generator makes. When the
// input runs out the retained state keeps evolving through the mixer, so
// short inputs still produce full pipelines deterministically.
type byteSource struct {
	data []byte
	i    int
	x    uint64
}

func (s *byteSource) Uint64() uint64 {
	for b := 0; b < 8; b++ {
		var v byte
		if s.i < len(s.data) {
			v = s.data[s.i]
			s.i++
		}
		s.x = s.x<<8 | uint64(v)
	}
	s.x ^= s.x >> 29
	s.x *= 0x9e3779b97f4a7c15
	s.x ^= s.x >> 32
	return s.x
}

func (s *byteSource) Int63() int64 { return int64(s.Uint64() >> 1) }
func (s *byteSource) Seed(int64)   {}

// FuzzDAGCompile hammers the DAG compile pass with generated plan sets.
// Invariants, for any set of valid input plans:
//
//   - CompilePlans never panics and never errors;
//   - the DAG validates: acyclic, parents precede children (creation
//     order is topological order), edges symmetric, keys unique;
//   - the lowered shared plan is itself topological: node IDs are 1..n
//     and every node-input reference points strictly backwards;
//   - every app output lands on a real lowered node;
//   - compilation is deterministic: a second compile of the same plans
//     yields identical keys and hashes (hash stability);
//   - solo compilation is a fixed point: recompiling a compiled plan
//     reproduces it text-identically;
//   - merged demand never exceeds the naive per-plan sum (nothing is
//     double-billed) and never undercuts the largest solo demand.
func FuzzDAGCompile(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("dag"))
	f.Add([]byte{0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07})
	f.Add([]byte("share the interior subgraphs, bill them once"))
	f.Add([]byte{0xff, 0xee, 0xdd, 0xcc, 0xbb, 0xaa, 0x99, 0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11, 0x00})

	cat := core.DefaultCatalog()
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4<<10 {
			return // entropy beyond a few KiB adds nothing
		}
		rng := rand.New(&byteSource{data: data})
		plans := make([]*core.Plan, 1+rng.Intn(3))
		for i := range plans {
			plan, err := testutil.RandomPipeline(rng).Validate(cat)
			if err != nil {
				t.Fatalf("generated pipeline invalid: %v", err)
			}
			plans[i] = plan
		}

		sp, err := CompilePlans(cat, CompileOptions{}, plans...)
		if err != nil {
			t.Fatalf("compile failed on valid plans: %v", err)
		}
		if err := sp.Graph.Validate(); err != nil {
			t.Fatalf("compiled DAG invalid: %v", err)
		}
		for i := range sp.Plan.Nodes {
			n := &sp.Plan.Nodes[i]
			if n.ID != i+1 {
				t.Fatalf("lowered node %d has ID %d", i, n.ID)
			}
			for _, in := range n.Inputs {
				if !in.FromChannel() && in.Node >= n.ID {
					t.Fatalf("node %d consumes node %d: not topological", n.ID, in.Node)
				}
			}
		}
		if len(sp.Outputs) != len(plans) {
			t.Fatalf("%d outputs for %d plans", len(sp.Outputs), len(plans))
		}
		for _, o := range sp.Outputs {
			if o.Out < 1 || o.Out > len(sp.Plan.Nodes) {
				t.Fatalf("output %q points at node %d of %d", o.Name, o.Out, len(sp.Plan.Nodes))
			}
		}

		// Hash stability: recompiling the same plans is bit-identical.
		sp2, err := CompilePlans(cat, CompileOptions{}, plans...)
		if err != nil {
			t.Fatalf("second compile failed: %v", err)
		}
		if len(sp2.Keys) != len(sp.Keys) {
			t.Fatalf("recompile changed node count: %d vs %d", len(sp2.Keys), len(sp.Keys))
		}
		for i := range sp.Keys {
			if sp.Keys[i] != sp2.Keys[i] || sp.Hashes[i] != sp2.Hashes[i] {
				t.Fatalf("node %d unstable: %q/%x vs %q/%x",
					i, sp.Keys[i], sp.Hashes[i], sp2.Keys[i], sp2.Hashes[i])
			}
		}

		// Solo compilation reaches a fixed point in one step.
		for _, p := range plans {
			c1, _, err := CompilePlan(cat, CompileOptions{}, p)
			if err != nil {
				t.Fatalf("solo compile: %v", err)
			}
			c2, _, err := CompilePlan(cat, CompileOptions{}, c1)
			if err != nil {
				t.Fatalf("recompile of compiled plan: %v", err)
			}
			if CompileToText(c1) != CompileToText(c2) {
				t.Fatalf("compile not a fixed point:\n--- first\n%s\n--- second\n%s",
					CompileToText(c1), CompileToText(c2))
			}
		}

		// Ledger: merged demand within [max solo, naive sum].
		var sf, si float64
		var sm int
		maxF := 0.0
		for _, p := range plans {
			pf, pi, pm := Demand(CompileOptions{}, p)
			sf += pf
			si += pi
			sm += pm
			if pf > maxF {
				maxF = pf
			}
		}
		mf, mi, mm := Demand(CompileOptions{}, plans...)
		if mf > sf+1e-9 || mi > si+1e-9 || mm > sm {
			t.Fatalf("merged demand %g/%g/%d exceeds naive sum %g/%g/%d", mf, mi, mm, sf, si, sm)
		}
		if mf < maxF-1e-9 {
			t.Fatalf("merged float demand %g below largest solo %g", mf, maxF)
		}
	})
}
