// Package ir implements Sidewinder's intermediate language (paper §3.3,
// Fig. 2c). The IR is the contract that decouples the mobile platform from
// the sensor-hub implementation: the sensor manager compiles a validated
// pipeline into IR text, pushes it over the hub link, and the hub runtime
// parses and executes it without any knowledge of the originating
// programming language.
//
// The textual form is the paper's:
//
//	# pipeline: significantMotion
//	ACC_X -> movingAvg(id=1, params={10});
//	ACC_Y -> movingAvg(id=2, params={10});
//	ACC_Z -> movingAvg(id=3, params={10});
//	1,2,3 -> vectorMagnitude(id=4);
//	4 -> minThreshold(id=5, params={15, 1});
//	5 -> OUT;
//
// Parameters are positional in the catalog's schema order; the compiler
// always emits the complete normalized parameter list so a program is
// self-contained.
package ir

import (
	"fmt"
	"strings"

	"sidewinder/internal/core"
)

// Source is one input reference of an instruction: either a sensor channel
// or a previously defined node ID.
type Source struct {
	Channel core.SensorChannel // set for raw channel inputs
	Node    int                // node ID otherwise
}

// FromChannel reports whether the source is a raw sensor channel.
func (s Source) FromChannel() bool { return s.Channel != "" }

// String renders the source in IR spelling.
func (s Source) String() string {
	if s.FromChannel() {
		return string(s.Channel)
	}
	return fmt.Sprintf("%d", s.Node)
}

// Instruction is one IR statement: sources feeding an algorithm instance,
// or the final OUT statement (Out == true).
type Instruction struct {
	Sources []Source
	Op      core.AlgorithmKind // empty for OUT
	ID      int                // 0 for OUT
	Params  []core.ParamValue  // positional, catalog schema order
	Out     bool
}

// String renders the instruction as one IR line (without trailing newline).
func (in Instruction) String() string {
	srcs := make([]string, len(in.Sources))
	for i, s := range in.Sources {
		srcs[i] = s.String()
	}
	left := strings.Join(srcs, ",")
	if in.Out {
		return fmt.Sprintf("%s -> OUT;", left)
	}
	if len(in.Params) == 0 {
		return fmt.Sprintf("%s -> %s(id=%d);", left, in.Op, in.ID)
	}
	ps := make([]string, len(in.Params))
	for i, p := range in.Params {
		ps[i] = p.String()
	}
	return fmt.Sprintf("%s -> %s(id=%d, params={%s});", left, in.Op, in.ID, strings.Join(ps, ", "))
}

// Program is a parsed or compiled IR program.
type Program struct {
	// Name is the optional pipeline label carried in the header comment.
	Name string
	// Instrs holds the statements in definition order; the last one is
	// the OUT statement.
	Instrs []Instruction
}

// Compile lowers a validated plan into an IR program. Node IDs are carried
// over unchanged, so diagnostics on either side of the link agree.
func Compile(plan *core.Plan) *Program {
	prog := &Program{Name: plan.Name}
	for i := range plan.Nodes {
		n := &plan.Nodes[i]
		srcs := make([]Source, len(n.Inputs))
		for j, ref := range n.Inputs {
			srcs[j] = Source{Channel: ref.Channel, Node: ref.Node}
		}
		// Emit the full normalized parameter list positionally in the
		// catalog schema order.
		params := make([]core.ParamValue, len(n.Meta.Params))
		for j, spec := range n.Meta.Params {
			params[j] = n.Params[spec.Name]
		}
		prog.Instrs = append(prog.Instrs, Instruction{
			Sources: srcs,
			Op:      n.Kind,
			ID:      n.ID,
			Params:  params,
		})
	}
	prog.Instrs = append(prog.Instrs, Instruction{
		Sources: []Source{{Node: plan.OutputNode()}},
		Out:     true,
	})
	return prog
}

// Encode renders the program as IR text.
func Encode(p *Program) string {
	var b strings.Builder
	if p.Name != "" {
		fmt.Fprintf(&b, "# pipeline: %s\n", p.Name)
	}
	for _, in := range p.Instrs {
		b.WriteString(in.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// CompileToText is the common Compile+Encode path used by the sensor
// manager.
func CompileToText(plan *core.Plan) string {
	return Encode(Compile(plan))
}
