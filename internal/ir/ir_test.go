package ir

import (
	"strings"
	"testing"

	"sidewinder/internal/core"
)

func significantMotion(t *testing.T) *core.Plan {
	t.Helper()
	p := core.NewPipeline("significantMotion")
	for _, ch := range []core.SensorChannel{core.AccelX, core.AccelY, core.AccelZ} {
		p.AddBranch(core.NewBranch(ch).Add(core.MovingAverage(10)))
	}
	p.Add(core.VectorMagnitude())
	p.Add(core.MinThreshold(15))
	plan, err := p.Validate(core.DefaultCatalog())
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestCompileMatchesPaperShape(t *testing.T) {
	text := CompileToText(significantMotion(t))
	want := []string{
		"# pipeline: significantMotion",
		"ACC_X -> movingAvg(id=1, params={10});",
		"ACC_Y -> movingAvg(id=2, params={10});",
		"ACC_Z -> movingAvg(id=3, params={10});",
		"1,2,3 -> vectorMagnitude(id=4);",
		"4 -> minThreshold(id=5, params={15, 1});",
		"5 -> OUT;",
	}
	got := strings.Split(strings.TrimSpace(text), "\n")
	if len(got) != len(want) {
		t.Fatalf("program:\n%s\nwant %d lines, got %d", text, len(want), len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("line %d = %q, want %q", i+1, got[i], want[i])
		}
	}
}

func TestRoundTripCompileParseBind(t *testing.T) {
	cat := core.DefaultCatalog()
	plan := significantMotion(t)
	text := CompileToText(plan)
	bound, err := ParseAndBind(text, cat)
	if err != nil {
		t.Fatalf("ParseAndBind: %v\nprogram:\n%s", err, text)
	}
	if bound.Name != plan.Name {
		t.Errorf("name %q, want %q", bound.Name, plan.Name)
	}
	if len(bound.Nodes) != len(plan.Nodes) {
		t.Fatalf("node count %d, want %d", len(bound.Nodes), len(plan.Nodes))
	}
	for i := range plan.Nodes {
		a, b := plan.Nodes[i], bound.Nodes[i]
		if a.ID != b.ID || a.Kind != b.Kind || a.InLen != b.InLen || a.OutLen != b.OutLen ||
			a.Rate != b.Rate || a.OutRate != b.OutRate || a.OutKind != b.OutKind {
			t.Errorf("node %d differs after round trip:\n  compiled: %+v\n  bound:    %+v", a.ID, a, b)
		}
		for name, v := range a.Params {
			if !b.Params[name].Equal(v) {
				t.Errorf("node %d param %s: %v != %v", a.ID, name, b.Params[name], v)
			}
		}
		if len(a.Inputs) != len(b.Inputs) {
			t.Errorf("node %d input count differs", a.ID)
			continue
		}
		for j := range a.Inputs {
			if a.Inputs[j] != b.Inputs[j] {
				t.Errorf("node %d input %d: %v != %v", a.ID, j, a.Inputs[j], b.Inputs[j])
			}
		}
	}
	// Re-encoding the bound plan must be byte-identical (canonical form).
	if text2 := CompileToText(bound); text2 != text {
		t.Errorf("re-encoded program differs:\n%s\nvs\n%s", text2, text)
	}
}

func TestRoundTripComplexPipelines(t *testing.T) {
	cat := core.DefaultCatalog()
	pipelines := []*core.Pipeline{
		core.NewPipeline("siren").AddBranch(core.NewBranch(core.Mic).
			Add(core.HighPass(750, 512)).
			Add(core.FFT()).
			Add(core.SpectralMag()).
			Add(core.Tonality(850, 1800, core.AudioRateHz)).
			Add(core.MinThresholdSustained(4, 3))),
		core.NewPipeline("music").AddBranch(
			core.NewBranch(core.Mic).Add(core.Window(512, 0, "hamming")).Add(core.Stat("variance")).Add(core.MinThreshold(0.01)),
			core.NewBranch(core.Mic).Add(core.Window(512, 0, "")).Add(core.ZCRVariance(8)).Add(core.BandThreshold(1e-4, 0.01)),
		).Add(core.And()),
		core.NewPipeline("steps").AddBranch(core.NewBranch(core.AccelX).
			Add(core.MovingAverage(3)).
			Add(core.Window(25, 5, "")).
			Add(core.Stat("stddev")).
			Add(core.MinThreshold(0.6))),
	}
	for _, p := range pipelines {
		plan, err := p.Validate(cat)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		text := CompileToText(plan)
		bound, err := ParseAndBind(text, cat)
		if err != nil {
			t.Fatalf("%s: bind: %v\n%s", p.Name(), err, text)
		}
		if CompileToText(bound) != text {
			t.Errorf("%s: canonical form not stable", p.Name())
		}
	}
}

func TestParseAcceptsWhitespaceAndComments(t *testing.T) {
	text := `
# pipeline: demo
// a comment

ACC_X -> movingAvg( id=1 , params={ 4, 1 });
  1 -> minThreshold(id=2, params={2.5, 1});
2 -> OUT;
`
	// Note: "4, 1" — movingAvg has one parameter, so give just the size.
	text = strings.Replace(text, "params={ 4, 1 }", "params={ 4 }", 1)
	prog, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Name != "demo" {
		t.Errorf("name = %q", prog.Name)
	}
	if len(prog.Instrs) != 3 {
		t.Fatalf("instruction count = %d", len(prog.Instrs))
	}
	if _, err := Bind(prog, core.DefaultCatalog()); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, text, want string
	}{
		{"empty", "", "empty program"},
		{"comment only", "# nothing\n", "empty program"},
		{"missing semicolon", "ACC_X -> movingAvg(id=1, params={4})", "missing terminating"},
		{"missing arrow", "ACC_X movingAvg(id=1);", "missing '->'"},
		{"bad source", "WAT -> movingAvg(id=1, params={4});\n1 -> OUT;", "neither a node ID nor a sensor channel"},
		{"forward reference", "2 -> movingAvg(id=1, params={4});", "referenced before definition"},
		{"negative node ref", "-1 -> movingAvg(id=1, params={4});", "must be positive"},
		{"duplicate id", "ACC_X -> abs(id=1);\nACC_Y -> abs(id=1);\n1 -> OUT;", "duplicate node id"},
		{"missing id", "ACC_X -> movingAvg(params={4});", "missing id="},
		{"bad id", "ACC_X -> movingAvg(id=zero);", "invalid id"},
		{"malformed call", "ACC_X -> movingAvg id=1;", "malformed call"},
		{"malformed params", "ACC_X -> movingAvg(id=1, size=4);", "malformed params"},
		{"no out", "ACC_X -> movingAvg(id=1, params={4});", "no OUT"},
		{"statement after out", "ACC_X -> abs(id=1);\n1 -> OUT;\nACC_Y -> abs(id=2);", "after OUT"},
		{"out from channel", "ACC_X -> OUT;", "cannot be fed directly"},
		{"out multi source", "ACC_X -> abs(id=1);\nACC_Y -> abs(id=2);\n1,2 -> OUT;", "exactly one source"},
		{"empty source", " -> movingAvg(id=1);", "empty source"},
		{"empty param", "ACC_X -> movingAvg(id=1, params={4,,5});", "empty parameter"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.text)
			if err == nil {
				t.Fatalf("expected error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestBindErrors(t *testing.T) {
	cat := core.DefaultCatalog()
	cases := []struct {
		name, text, want string
	}{
		{
			"unknown algorithm",
			"ACC_X -> teleport(id=1);\n1 -> OUT;",
			"not in platform catalog",
		},
		{
			"too many params",
			"ACC_X -> abs(id=1, params={1, 2});\n1 -> OUT;",
			"at most 0 parameters",
		},
		{
			"id out of sequence",
			"ACC_X -> abs(id=2);\n2 -> OUT;",
			"out of sequence",
		},
		{
			"dangling node",
			"ACC_X -> abs(id=1);\nACC_Y -> abs(id=2);\n2 -> OUT;",
			"never consumed",
		},
		{
			"vector to OUT",
			"ACC_X -> window(id=1, params={8, 0, rectangular});\n1 -> OUT;",
			"must be scalar",
		},
		{
			"kind mismatch",
			"ACC_X -> zeroCrossingRate(id=1);\n1 -> OUT;",
			"requires vector",
		},
		{
			"param validation",
			"ACC_X -> movingAvg(id=1, params={0});\n1 -> OUT;",
			"outside",
		},
		{
			"enum via string param",
			"ACC_X -> window(id=1, params={8, 0, bogus});\nACC_Y -> abs(id=2);\n2 -> OUT;",
			"not in",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog, err := Parse(tc.text)
			if err != nil {
				t.Fatalf("parse failed first: %v", err)
			}
			_, err = Bind(prog, cat)
			if err == nil {
				t.Fatalf("expected bind error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestSourceString(t *testing.T) {
	if (Source{Channel: core.Mic}).String() != "MIC" {
		t.Error("channel source string wrong")
	}
	if (Source{Node: 3}).String() != "3" {
		t.Error("node source string wrong")
	}
}

func TestInstructionStringOut(t *testing.T) {
	in := Instruction{Sources: []Source{{Node: 5}}, Out: true}
	if got := in.String(); got != "5 -> OUT;" {
		t.Errorf("OUT string = %q", got)
	}
}

func TestEncodeWithoutName(t *testing.T) {
	prog := &Program{Instrs: []Instruction{
		{Sources: []Source{{Channel: core.AccelX}}, Op: core.KindAbs, ID: 1},
		{Sources: []Source{{Node: 1}}, Out: true},
	}}
	text := Encode(prog)
	if strings.Contains(text, "pipeline:") {
		t.Errorf("unnamed program should have no header:\n%s", text)
	}
	if _, err := ParseAndBind(text, core.DefaultCatalog()); err != nil {
		t.Fatal(err)
	}
}

func TestGraphRendersConceptualTree(t *testing.T) {
	plan := significantMotion(t)
	g := Graph(plan)
	for _, want := range []string{
		"pipeline: significantMotion",
		"OUT",
		"[5] minThreshold(min=15, sustain=1)",
		"[4] vectorMagnitude",
		"movingAvg(size=10) ← ACC_X",
		"movingAvg(size=10) ← ACC_Y",
		"movingAvg(size=10) ← ACC_Z",
	} {
		if !strings.Contains(g, want) {
			t.Errorf("graph missing %q:\n%s", want, g)
		}
	}
	// Tree connectors present.
	if !strings.Contains(g, "└─") || !strings.Contains(g, "├─") {
		t.Errorf("graph lacks tree structure:\n%s", g)
	}
}

func TestGraphDualBranch(t *testing.T) {
	p := core.NewPipeline("music")
	p.AddBranch(
		core.NewBranch(core.Mic).Add(core.Window(512, 0, "")).Add(core.Stat("variance")).Add(core.MinThreshold(0.01)),
		core.NewBranch(core.Mic).Add(core.Window(512, 0, "")).Add(core.ZCRVariance(8)).Add(core.BandThreshold(0, 0.01)),
	)
	p.Add(core.And())
	plan, err := p.Validate(core.DefaultCatalog())
	if err != nil {
		t.Fatal(err)
	}
	g := Graph(plan)
	if !strings.Contains(g, "and") || !strings.Contains(g, "← MIC") {
		t.Errorf("dual-branch graph wrong:\n%s", g)
	}
	// Both windows appear (they are distinct plan nodes even if equal).
	if strings.Count(g, "window(") != 2 {
		t.Errorf("expected two window nodes:\n%s", g)
	}
}
