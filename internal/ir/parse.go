package ir

import (
	"fmt"
	"strconv"
	"strings"

	"sidewinder/internal/core"
)

// Parse reads IR text into a Program. It checks syntax only; use Bind to
// validate the program against a platform catalog. Statements must be in
// definition order (a source may only reference an earlier node), which
// also guarantees acyclicity; this matches the compiler's output and keeps
// the hub-side parser single-pass, as a microcontroller implementation
// would be.
func Parse(text string) (*Program, error) {
	prog := &Program{}
	seen := make(map[int]bool)
	sawOut := false
	for lineNo, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") || strings.HasPrefix(line, "//") {
			if name, ok := strings.CutPrefix(strings.TrimPrefix(line, "#"), " pipeline:"); ok {
				prog.Name = strings.TrimSpace(name)
			}
			continue
		}
		if sawOut {
			return nil, fmt.Errorf("ir: line %d: statement after OUT", lineNo+1)
		}
		in, err := parseLine(line, seen)
		if err != nil {
			return nil, fmt.Errorf("ir: line %d: %w", lineNo+1, err)
		}
		if in.Out {
			sawOut = true
		} else {
			if seen[in.ID] {
				return nil, fmt.Errorf("ir: line %d: duplicate node id %d", lineNo+1, in.ID)
			}
			seen[in.ID] = true
		}
		prog.Instrs = append(prog.Instrs, in)
	}
	if len(prog.Instrs) == 0 {
		return nil, fmt.Errorf("ir: empty program")
	}
	if !sawOut {
		return nil, fmt.Errorf("ir: program has no OUT statement")
	}
	return prog, nil
}

func parseLine(line string, seen map[int]bool) (Instruction, error) {
	body, ok := strings.CutSuffix(line, ";")
	if !ok {
		return Instruction{}, fmt.Errorf("missing terminating ';'")
	}
	left, right, ok := strings.Cut(body, "->")
	if !ok {
		return Instruction{}, fmt.Errorf("missing '->'")
	}
	srcs, err := parseSources(strings.TrimSpace(left), seen)
	if err != nil {
		return Instruction{}, err
	}
	right = strings.TrimSpace(right)
	if right == "OUT" {
		if len(srcs) != 1 {
			return Instruction{}, fmt.Errorf("OUT takes exactly one source, got %d", len(srcs))
		}
		if srcs[0].FromChannel() {
			return Instruction{}, fmt.Errorf("OUT cannot be fed directly from a sensor channel")
		}
		return Instruction{Sources: srcs, Out: true}, nil
	}
	return parseCall(right, srcs)
}

func parseSources(s string, seen map[int]bool) ([]Source, error) {
	if s == "" {
		return nil, fmt.Errorf("empty source list")
	}
	parts := strings.Split(s, ",")
	out := make([]Source, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			return nil, fmt.Errorf("empty source in list %q", s)
		}
		if id, err := strconv.Atoi(p); err == nil {
			if id <= 0 {
				return nil, fmt.Errorf("node reference %d must be positive", id)
			}
			if !seen[id] {
				return nil, fmt.Errorf("node %d referenced before definition", id)
			}
			out = append(out, Source{Node: id})
			continue
		}
		ch, err := core.ParseChannel(p)
		if err != nil {
			return nil, fmt.Errorf("source %q is neither a node ID nor a sensor channel", p)
		}
		out = append(out, Source{Channel: ch})
	}
	return out, nil
}

// parseCall parses `op(id=N)` or `op(id=N, params={v1, v2, ...})`.
func parseCall(s string, srcs []Source) (Instruction, error) {
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return Instruction{}, fmt.Errorf("malformed call %q", s)
	}
	op := strings.TrimSpace(s[:open])
	if op == "" {
		return Instruction{}, fmt.Errorf("missing algorithm name in %q", s)
	}
	args := strings.TrimSpace(s[open+1 : len(s)-1])

	idPart := args
	paramsPart := ""
	if comma := strings.Index(args, ","); comma >= 0 {
		idPart = strings.TrimSpace(args[:comma])
		paramsPart = strings.TrimSpace(args[comma+1:])
	}
	idStr, ok := strings.CutPrefix(idPart, "id=")
	if !ok {
		return Instruction{}, fmt.Errorf("call %q missing id=", s)
	}
	id, err := strconv.Atoi(strings.TrimSpace(idStr))
	if err != nil || id <= 0 {
		return Instruction{}, fmt.Errorf("invalid id %q", idStr)
	}

	var params []core.ParamValue
	if paramsPart != "" {
		inner, ok := strings.CutPrefix(paramsPart, "params={")
		if !ok || !strings.HasSuffix(inner, "}") {
			return Instruction{}, fmt.Errorf("malformed params in %q", s)
		}
		inner = strings.TrimSuffix(inner, "}")
		if strings.TrimSpace(inner) != "" {
			for _, field := range strings.Split(inner, ",") {
				field = strings.TrimSpace(field)
				if field == "" {
					return Instruction{}, fmt.Errorf("empty parameter in %q", s)
				}
				if num, err := strconv.ParseFloat(field, 64); err == nil {
					params = append(params, core.Number(num))
				} else {
					params = append(params, core.Str(field))
				}
			}
		}
	}
	return Instruction{Sources: srcs, Op: core.AlgorithmKind(op), ID: id, Params: params}, nil
}
