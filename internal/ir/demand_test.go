package ir

import (
	"math"
	"math/rand"
	"testing"

	"sidewinder/internal/core"
	"sidewinder/internal/testutil"
)

// Property tests for DAG demand billing over generated pipeline pairs.
// PR 4 pinned shared-prefix billing; the DAG generalizes sharing to any
// interior subgraph, so these pin the stronger conservation law: merged
// demand equals the sum of solo demands minus exactly the demand of the
// shared keys — nothing double-billed, nothing silently dropped.

const demandEps = 1e-9

func randomPlans(t *testing.T, rng *rand.Rand, n int) []*core.Plan {
	t.Helper()
	cat := core.DefaultCatalog()
	plans := make([]*core.Plan, n)
	for i := range plans {
		p := testutil.RandomPipeline(rng)
		plan, err := p.Validate(cat)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		plans[i] = plan
	}
	return plans
}

// TestDemandConservation is the ledger law: for any pair of plans,
// solo(A) + solo(B) - merged(A,B) must equal exactly the demand of the
// keys the two plans share — i.e. every shared subgraph is billed once
// and only once, to 1e-9.
func TestDemandConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	opts := CompileOptions{}
	sawSharing := false
	for i := 0; i < 200; i++ {
		plans := randomPlans(t, rng, 2)
		a, b := plans[0], plans[1]

		fa, ia, ma := Demand(opts, a)
		fb, ib, mb := Demand(opts, b)
		fm, im, mm := Demand(opts, a, b)

		// Merged never exceeds the naive sum, and never undercuts the
		// larger solo (executing B alongside A cannot make A cheaper).
		if fm > fa+fb+demandEps || im > ia+ib+demandEps || mm > ma+mb {
			t.Fatalf("pair %d: merged demand exceeds sum: %g/%g/%d vs %g/%g/%d",
				i, fm, im, mm, fa+fb, ia+ib, ma+mb)
		}
		if fm < math.Max(fa, fb)-demandEps || mm < ma || mm < mb {
			t.Fatalf("pair %d: merged demand below a solo demand", i)
		}

		// Exact conservation: the overlap equals the demand of the keys
		// both solo analyses contain.
		bKeys := make(map[string]bool)
		for _, nd := range AnalyzePlan(opts, b) {
			bKeys[nd.Key] = true
		}
		var fs, is float64
		var ms int
		shared := false
		for _, nd := range AnalyzePlan(opts, a) {
			if bKeys[nd.Key] {
				shared = true
				fs += nd.FloatOpsPerSec
				is += nd.IntOpsPerSec
				ms += nd.MemoryBytes
			}
		}
		if shared {
			sawSharing = true
		}
		if math.Abs((fa+fb-fm)-fs) > demandEps || math.Abs((ia+ib-im)-is) > demandEps || (ma+mb-mm) != ms {
			t.Fatalf("pair %d: conservation violated: overlap %g/%g/%d, shared-key demand %g/%g/%d",
				i, fa+fb-fm, ia+ib-im, ma+mb-mm, fs, is, ms)
		}
	}
	if !sawSharing {
		t.Fatal("no generated pair shared a subgraph: the conservation law was never exercised")
	}
}

// TestDemandAccumulatorMatchesBatch pins that incremental pricing
// (Marginal/Commit, the admission controller's path) lands on the same
// totals as the one-shot Demand over the committed set — and that a
// committed plan's marginal is exactly zero.
func TestDemandAccumulatorMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	opts := CompileOptions{}
	for i := 0; i < 50; i++ {
		plans := randomPlans(t, rng, 1+rng.Intn(4))
		acc := NewDemandAccumulator(opts)
		for _, p := range plans {
			mf, mi, mm := acc.Marginal(p)
			bf, bi, bm := acc.Total()
			cf, ci, cm := acc.Commit(p)
			if math.Abs(bf+mf-cf) > demandEps || math.Abs(bi+mi-ci) > demandEps || bm+mm != cm {
				t.Fatalf("set %d: marginal %g/%g/%d does not bridge totals", i, mf, mi, mm)
			}
			if mf2, mi2, mm2 := acc.Marginal(p); mf2 != 0 || mi2 != 0 || mm2 != 0 {
				t.Fatalf("set %d: committed plan still has marginal %g/%g/%d", i, mf2, mi2, mm2)
			}
		}
		af, ai, am := acc.Total()
		df, di, dm := Demand(opts, plans...)
		if math.Abs(af-df) > demandEps || math.Abs(ai-di) > demandEps || am != dm {
			t.Fatalf("set %d: accumulator %g/%g/%d vs batch %g/%g/%d",
				i, af, ai, am, df, di, dm)
		}
	}
}

// TestNoOptDemandEqualsPlanTotals pins the ablation anchor: with every
// rewrite disabled, DAG demand is exactly the naive per-plan sum the
// pre-DAG scheduler would have billed.
func TestNoOptDemandEqualsPlanTotals(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for i := 0; i < 50; i++ {
		plans := randomPlans(t, rng, 1+rng.Intn(3))
		var wf, wi float64
		var wm int
		for _, p := range plans {
			f, iOps := p.TotalOpsPerSecond()
			wf += f
			wi += iOps
			wm += p.TotalMemory()
		}
		gf, gi, gm := Demand(NoOpt(), plans...)
		if math.Abs(gf-wf) > demandEps || math.Abs(gi-wi) > demandEps || gm != wm {
			t.Fatalf("set %d: NoOpt demand %g/%g/%d, naive totals %g/%g/%d",
				i, gf, gi, gm, wf, wi, wm)
		}
	}
}

// TestDemandByKindSumsToDemand pins that the per-kind breakdown is a
// partition of the total.
func TestDemandByKindSumsToDemand(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	plans := randomPlans(t, rng, 4)
	df, di, dm := Demand(CompileOptions{}, plans...)
	var kf, ki float64
	var km, nodes int
	for _, kd := range DemandByKind(CompileOptions{}, plans...) {
		kf += kd.FloatOpsPerSec
		ki += kd.IntOpsPerSec
		km += kd.MemoryBytes
		nodes += kd.Nodes
	}
	if math.Abs(kf-df) > demandEps || math.Abs(ki-di) > demandEps || km != dm {
		t.Fatalf("per-kind sums %g/%g/%d vs demand %g/%g/%d", kf, ki, km, df, di, dm)
	}
	if nodes == 0 {
		t.Fatal("no nodes in breakdown")
	}
}
