package resilience

import (
	"bytes"
	"errors"
	"testing"

	"sidewinder/internal/telemetry"
)

// --- heartbeat codec ---

func TestHeartbeatRoundTrip(t *testing.T) {
	for _, hb := range []Heartbeat{
		{},
		{Seq: 1, Epoch: 1},
		{Seq: 0xDEADBEEF, Epoch: 0x01020304},
		{Seq: 0xFFFFFFFF, Epoch: 0xFFFFFFFF},
	} {
		wire := hb.Encode()
		if len(wire) != HeartbeatSize {
			t.Fatalf("Encode(%+v) = %d bytes, want %d", hb, len(wire), HeartbeatSize)
		}
		got, err := DecodeHeartbeat(wire)
		if err != nil {
			t.Fatalf("DecodeHeartbeat(%+v): %v", hb, err)
		}
		if got != hb {
			t.Fatalf("round trip: got %+v, want %+v", got, hb)
		}
	}
}

func TestHeartbeatDecodeBadLength(t *testing.T) {
	for _, n := range []int{0, 1, 7, 9, 64} {
		_, err := DecodeHeartbeat(bytes.Repeat([]byte{0xAA}, n))
		if !errors.Is(err, ErrBadHeartbeat) {
			t.Fatalf("DecodeHeartbeat(%d bytes): err = %v, want ErrBadHeartbeat", n, err)
		}
	}
}

// --- crash injector ---

func TestCrashInjectorDisabledProfile(t *testing.T) {
	c, err := NewCrashInjector(CrashProfile{})
	if err != nil {
		t.Fatalf("NewCrashInjector(zero): %v", err)
	}
	if c != nil {
		t.Fatalf("disabled profile should yield a nil injector")
	}
	// Nil injector is a hub that never crashes.
	if c.Down() {
		t.Fatalf("nil injector reports Down")
	}
	if tr := c.Tick(); tr.Onset || tr.Recovered {
		t.Fatalf("nil injector produced a transition: %+v", tr)
	}
	if s := c.Stats(); s != (CrashStats{}) {
		t.Fatalf("nil injector stats = %+v, want zero", s)
	}
}

func TestCrashInjectorValidate(t *testing.T) {
	bad := []CrashProfile{
		{MTBFTicks: -1},
		{MTBFTicks: 100, MeanDownTicks: -2},
		{MTBFTicks: 100, MaxDownTicks: -1},
		{MTBFTicks: 100, ResetWeight: -0.5},
	}
	for _, p := range bad {
		if _, err := NewCrashInjector(p); err == nil {
			t.Fatalf("NewCrashInjector(%+v) accepted an invalid profile", p)
		}
	}
}

func TestCrashInjectorDeterminism(t *testing.T) {
	profile := CrashProfile{Seed: 42, MTBFTicks: 50, MeanDownTicks: 8}
	run := func() []Transition {
		c, err := NewCrashInjector(profile)
		if err != nil {
			t.Fatalf("NewCrashInjector: %v", err)
		}
		var trs []Transition
		for i := 0; i < 2000; i++ {
			if tr := c.Tick(); tr.Onset || tr.Recovered {
				trs = append(trs, tr)
			}
		}
		return trs
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatalf("no crashes in 2000 ticks at MTBF 50")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different schedules: %d vs %d transitions", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("transition %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestCrashInjectorOutageShape(t *testing.T) {
	c, err := NewCrashInjector(CrashProfile{Seed: 7, MTBFTicks: 30, MeanDownTicks: 5})
	if err != nil {
		t.Fatalf("NewCrashInjector: %v", err)
	}
	downRun := 0
	sawOutage := false
	for i := 0; i < 5000; i++ {
		tr := c.Tick()
		if tr.Onset && tr.Recovered {
			t.Fatalf("tick %d: onset and recovery on the same tick", i)
		}
		if tr.Onset {
			if downRun != 0 {
				t.Fatalf("tick %d: onset while already down", i)
			}
			if !c.Down() {
				t.Fatalf("tick %d: onset tick must already be down", i)
			}
		}
		if tr.Recovered {
			if downRun == 0 {
				t.Fatalf("tick %d: recovery without an outage", i)
			}
			if c.Down() {
				t.Fatalf("tick %d: recovery tick must already be up", i)
			}
			sawOutage = true
			downRun = 0
		}
		if c.Down() {
			downRun++
		}
	}
	if !sawOutage {
		t.Fatalf("no complete outage observed in 5000 ticks")
	}
	st := c.Stats()
	if st.Crashes == 0 || st.DownTicks == 0 {
		t.Fatalf("stats did not accumulate: %+v", st)
	}
	if st.Resets+st.Hangs+st.Brownouts != st.Crashes {
		t.Fatalf("kind tallies %d+%d+%d != crashes %d", st.Resets, st.Hangs, st.Brownouts, st.Crashes)
	}
}

func TestScheduledCrashInjector(t *testing.T) {
	c := NewScheduledCrashInjector([]ScheduledCrash{
		{AtTick: 3, Kind: Hang, DownTicks: 2},
		{AtTick: 4, Kind: Reset, DownTicks: 1}, // falls inside the hang; coalesced away
		{AtTick: 10, Kind: Brownout, DownTicks: 1},
	})
	var down []bool
	var events []string
	for i := 0; i < 14; i++ {
		tr := c.Tick()
		if tr.Onset {
			events = append(events, tr.Kind.String()+"-onset")
		}
		if tr.Recovered {
			events = append(events, tr.Kind.String()+"-up")
		}
		down = append(down, c.Down())
	}
	wantEvents := []string{"hang-onset", "hang-up", "brownout-onset", "brownout-up"}
	if len(events) != len(wantEvents) {
		t.Fatalf("events = %v, want %v", events, wantEvents)
	}
	for i := range events {
		if events[i] != wantEvents[i] {
			t.Fatalf("events = %v, want %v", events, wantEvents)
		}
	}
	// Outage covers ticks [3,5) and [10,11).
	wantDown := []bool{false, false, false, true, true, false, false, false, false, false, true, false, false, false}
	for i := range down {
		if down[i] != wantDown[i] {
			t.Fatalf("down timeline = %v, want %v", down, wantDown)
		}
	}
	st := c.Stats()
	if st.Crashes != 2 || st.Hangs != 1 || st.Brownouts != 1 || st.Resets != 0 {
		t.Fatalf("stats = %+v, want 1 hang + 1 brownout", st)
	}
	if st.DownTicks != 3 {
		t.Fatalf("DownTicks = %d, want 3", st.DownTicks)
	}
}

func TestCrashKindLosesState(t *testing.T) {
	if !Reset.LosesState() || !Brownout.LosesState() {
		t.Fatalf("Reset and Brownout must lose state")
	}
	if Hang.LosesState() {
		t.Fatalf("Hang must retain state")
	}
}

// --- supervisor ---

// stepQuiet ticks the supervisor n times with a silent line, answering no
// pings, and returns how many pings it asked for.
func stepQuiet(s *Supervisor, n int) int {
	pings := 0
	for i := 0; i < n; i++ {
		if s.Tick().Ping {
			pings++
		}
	}
	return pings
}

func testConfig() SupervisorConfig {
	return SupervisorConfig{PingIntervalTicks: 4, TimeoutTicks: 3, MissBudget: 2, ProbeBackoffTicks: 4, MaxProbeBackoffTicks: 16}
}

func TestSupervisorDefaults(t *testing.T) {
	s := NewSupervisor(SupervisorConfig{})
	cfg := s.Config()
	if cfg.PingIntervalTicks != 8 || cfg.TimeoutTicks != 8 || cfg.MissBudget != 3 ||
		cfg.ProbeBackoffTicks != 16 || cfg.MaxProbeBackoffTicks != 128 {
		t.Fatalf("defaults = %+v", cfg)
	}
	if s.State() != Up {
		t.Fatalf("initial state = %v, want up", s.State())
	}
}

func TestSupervisorNilSafe(t *testing.T) {
	var s *Supervisor
	if s.State() != Up {
		t.Fatalf("nil supervisor state = %v, want up", s.State())
	}
	if s.Tick().Ping {
		t.Fatalf("nil supervisor asked for a ping")
	}
	s.ObserveTraffic()
	s.ObservePong(Heartbeat{}, true)
	s.ObserveReprovisioned()
	s.SetTelemetry(nil, nil)
	if s.TakeReprovision() {
		t.Fatalf("nil supervisor latched a reprovision")
	}
	if s.Stats() != (SupervisorStats{}) {
		t.Fatalf("nil supervisor stats nonzero")
	}
}

// TestSupervisorDetection walks the happy detection path: idle pings, a
// dead hub, Down after the miss budget, backoff probing, then recovery and
// re-provisioning.
func TestSupervisorDetection(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := NewSupervisor(testConfig())
	s.SetTelemetry(reg, nil)

	// Answered pings keep it Up.
	for round := 0; round < 3; round++ {
		sawPing := false
		for i := 0; i < 10 && !sawPing; i++ {
			if s.Tick().Ping {
				sawPing = true
			}
		}
		if !sawPing {
			t.Fatalf("no ping on an idle line")
		}
		s.ObservePong(Heartbeat{Seq: uint32(round + 1), Epoch: 1}, true)
		if s.State() != Up {
			t.Fatalf("state after pong = %v, want up", s.State())
		}
	}

	// Hub goes silent. Detection must land within
	// interval + budget*(timeout+1) ticks, and not before budget misses.
	cfg := s.Config()
	ticks := 0
	for s.State() != Down {
		s.Tick()
		ticks++
		if ticks > cfg.PingIntervalTicks+cfg.MissBudget*(cfg.TimeoutTicks+2) {
			t.Fatalf("no Down declaration after %d silent ticks (state %v)", ticks, s.State())
		}
	}
	st := s.Stats()
	if st.Detections != 1 {
		t.Fatalf("Detections = %d, want 1", st.Detections)
	}
	if st.MissedPongs != cfg.MissBudget {
		t.Fatalf("MissedPongs = %d, want %d", st.MissedPongs, cfg.MissBudget)
	}
	if st.DetectionCount != 1 || st.DetectionTicksMax < cfg.TimeoutTicks {
		t.Fatalf("detection latency not recorded: %+v", st)
	}
	if got := reg.Counter("supervisor.detections").Value(); got != 1 {
		t.Fatalf("detections counter = %d, want 1", got)
	}

	// Down: probes back off, capped.
	probeGaps := []int{}
	gap := 0
	for len(probeGaps) < 5 {
		if s.Tick().Ping {
			probeGaps = append(probeGaps, gap)
			gap = 0
		} else {
			gap++
		}
	}
	for i := 1; i < len(probeGaps); i++ {
		if probeGaps[i] < probeGaps[i-1] && probeGaps[i-1] < cfg.MaxProbeBackoffTicks-1 {
			t.Fatalf("probe gaps not non-decreasing below the cap: %v", probeGaps)
		}
		if probeGaps[i] > cfg.MaxProbeBackoffTicks {
			t.Fatalf("probe gap %d exceeds cap %d: %v", probeGaps[i], cfg.MaxProbeBackoffTicks, probeGaps)
		}
	}

	// Hub answers: Recovering, reprovision latched exactly once.
	s.ObservePong(Heartbeat{Seq: 99, Epoch: 2}, true)
	if s.State() != Recovering {
		t.Fatalf("state after pong while Down = %v, want recovering", s.State())
	}
	if !s.TakeReprovision() {
		t.Fatalf("reprovision not latched on recovery")
	}
	if s.TakeReprovision() {
		t.Fatalf("reprovision latch did not clear")
	}

	// Manager finishes re-pushing: Up again.
	s.ObserveReprovisioned()
	if s.State() != Up {
		t.Fatalf("state after reprovision = %v, want up", s.State())
	}
	if s.Stats().Reprovisions != 1 {
		t.Fatalf("Reprovisions = %d, want 1", s.Stats().Reprovisions)
	}
	if got := reg.Counter("supervisor.recoveries").Value(); got != 1 {
		t.Fatalf("recoveries counter = %d, want 1", got)
	}
}

// TestSupervisorTrafficIsLife checks that ordinary inbound frames count as
// heartbeats: a chatty hub is never pinged.
func TestSupervisorTrafficIsLife(t *testing.T) {
	s := NewSupervisor(testConfig())
	for i := 0; i < 100; i++ {
		s.ObserveTraffic()
		if s.Tick().Ping {
			t.Fatalf("tick %d: pinged a hub that talks every tick", i)
		}
	}
	if s.State() != Up {
		t.Fatalf("state = %v, want up", s.State())
	}
	if s.Stats().PingsSent != 0 {
		t.Fatalf("PingsSent = %d, want 0", s.Stats().PingsSent)
	}
}

// TestSupervisorEpochChange checks the silent-reboot path: the hub answers
// every ping but its boot epoch changed, so the supervisor must go
// straight to Recovering without ever passing through Down.
func TestSupervisorEpochChange(t *testing.T) {
	s := NewSupervisor(testConfig())
	stepQuiet(s, s.Config().PingIntervalTicks)
	s.ObservePong(Heartbeat{Seq: 1, Epoch: 1}, true)
	if s.State() != Up {
		t.Fatalf("state = %v, want up", s.State())
	}
	stepQuiet(s, s.Config().PingIntervalTicks)
	s.ObservePong(Heartbeat{Seq: 2, Epoch: 2}, true) // rebooted between probes
	if s.State() != Recovering {
		t.Fatalf("state after epoch change = %v, want recovering", s.State())
	}
	st := s.Stats()
	if st.EpochChanges != 1 || st.Detections != 1 {
		t.Fatalf("stats after epoch change: %+v", st)
	}
	if !s.TakeReprovision() {
		t.Fatalf("epoch change did not latch a reprovision")
	}
	// Same epoch again afterwards: no new detection.
	s.ObserveReprovisioned()
	stepQuiet(s, s.Config().PingIntervalTicks)
	s.ObservePong(Heartbeat{Seq: 3, Epoch: 2}, true)
	if s.State() != Up || s.Stats().EpochChanges != 1 {
		t.Fatalf("stable epoch treated as a reboot: state %v stats %+v", s.State(), s.Stats())
	}
}

// TestSupervisorLegacyPong checks that an empty (pre-heartbeat) pong still
// counts as life but never triggers epoch logic.
func TestSupervisorLegacyPong(t *testing.T) {
	s := NewSupervisor(testConfig())
	for round := 0; round < 4; round++ {
		stepQuiet(s, s.Config().PingIntervalTicks)
		s.ObservePong(Heartbeat{}, false)
		if s.State() != Up {
			t.Fatalf("round %d: state = %v, want up", round, s.State())
		}
	}
	if s.Stats().EpochChanges != 0 || s.Stats().Detections != 0 {
		t.Fatalf("legacy pongs triggered detection: %+v", s.Stats())
	}
}

// TestSupervisorRecoveringStall checks the watchdog: a hub that dies again
// mid-re-provisioning drops the supervisor back to Down, and the next
// recovery latches a fresh re-provisioning pass.
func TestSupervisorRecoveringStall(t *testing.T) {
	s := NewSupervisor(testConfig())
	cfg := s.Config()
	// Drive to Down, then to Recovering.
	stepQuiet(s, cfg.PingIntervalTicks+cfg.MissBudget*(cfg.TimeoutTicks+2))
	if s.State() != Down {
		t.Fatalf("setup: state = %v, want down", s.State())
	}
	s.ObserveTraffic()
	if s.State() != Recovering || !s.TakeReprovision() {
		t.Fatalf("setup: recovery did not latch")
	}
	// Hub dies again before the re-push completes: total silence.
	stall := cfg.TimeoutTicks*cfg.MissBudget + 2
	stepQuiet(s, stall)
	if s.State() != Down {
		t.Fatalf("state after %d stalled ticks = %v, want down", stall, s.State())
	}
	if s.Stats().Detections != 2 {
		t.Fatalf("Detections = %d, want 2", s.Stats().Detections)
	}
	// Second recovery latches again.
	s.ObserveTraffic()
	if s.State() != Recovering || !s.TakeReprovision() {
		t.Fatalf("second recovery did not latch a fresh reprovision")
	}
	// Steady traffic while Recovering keeps the watchdog fed.
	for i := 0; i < 10*stall; i++ {
		s.ObserveTraffic()
		s.Tick()
	}
	if s.State() != Recovering {
		t.Fatalf("fed watchdog still fired: state = %v", s.State())
	}
	s.ObserveReprovisioned()
	if s.State() != Up || s.Stats().Reprovisions != 1 {
		t.Fatalf("final state %v, reprovisions %d", s.State(), s.Stats().Reprovisions)
	}
}

// TestSupervisorDownTicksAccounting checks that DownTicks covers the whole
// Down + Recovering span.
func TestSupervisorDownTicksAccounting(t *testing.T) {
	s := NewSupervisor(testConfig())
	cfg := s.Config()
	stepQuiet(s, cfg.PingIntervalTicks+cfg.MissBudget*(cfg.TimeoutTicks+2))
	if s.State() != Down {
		t.Fatalf("setup: state = %v, want down", s.State())
	}
	before := s.Stats().DownTicks
	for i := 0; i < 10; i++ {
		s.Tick()
	}
	if got := s.Stats().DownTicks - before; got != 10 {
		t.Fatalf("DownTicks advanced by %d over 10 down ticks", got)
	}
	s.ObserveTraffic() // Recovering also counts as down time
	before = s.Stats().DownTicks
	for i := 0; i < 3; i++ {
		s.ObserveTraffic()
		s.Tick()
	}
	if got := s.Stats().DownTicks - before; got != 3 {
		t.Fatalf("DownTicks advanced by %d over 3 recovering ticks", got)
	}
}
