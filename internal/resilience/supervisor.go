package resilience

import (
	"fmt"

	"sidewinder/internal/telemetry"
)

// SupervisorState is the supervisor's belief about the hub.
type SupervisorState int

const (
	// Up: recent evidence of life; no probe outstanding past budget.
	Up SupervisorState = iota
	// Suspect: at least one probe went unanswered; probing harder.
	Suspect
	// Down: the miss budget is exhausted; the hub is declared dead and
	// probed with capped exponential backoff. Fallback sensing runs.
	Down
	// Recovering: the hub answered again after Down (or rebooted behind
	// our back); re-provisioning of the condition set is in progress.
	Recovering
)

// String returns the state's report name.
func (s SupervisorState) String() string {
	switch s {
	case Up:
		return "up"
	case Suspect:
		return "suspect"
	case Down:
		return "down"
	case Recovering:
		return "recovering"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// SupervisorConfig tunes the liveness protocol. Zero fields take the
// defaults noted on each; ticks are manager Service passes, the same
// clock the ARQ layer runs on.
type SupervisorConfig struct {
	// PingIntervalTicks is how long the line may stay silent before the
	// supervisor sends an explicit ping (default 8). Inbound traffic of
	// any kind resets the timer — data frames are free heartbeats.
	PingIntervalTicks int
	// TimeoutTicks is how long to wait for a pong before counting a miss
	// (default 8; generous enough for one full ARQ backoff cycle).
	TimeoutTicks int
	// MissBudget is the number of consecutive unanswered probes that
	// flips the supervisor to Down (default 3).
	MissBudget int
	// ProbeBackoffTicks is the initial wait between probes while Down
	// (default 16).
	ProbeBackoffTicks int
	// MaxProbeBackoffTicks caps the Down-state backoff (default 128).
	MaxProbeBackoffTicks int
}

func (c SupervisorConfig) withDefaults() SupervisorConfig {
	if c.PingIntervalTicks <= 0 {
		c.PingIntervalTicks = 8
	}
	if c.TimeoutTicks <= 0 {
		c.TimeoutTicks = 8
	}
	if c.MissBudget <= 0 {
		c.MissBudget = 3
	}
	if c.ProbeBackoffTicks <= 0 {
		c.ProbeBackoffTicks = 16
	}
	if c.MaxProbeBackoffTicks <= 0 {
		c.MaxProbeBackoffTicks = 128
	}
	return c
}

// Action is what the supervisor wants done after a tick.
type Action struct {
	// Ping asks the manager to send a liveness probe carrying Seq.
	Ping bool
	Seq  uint32
}

// SupervisorStats tallies one supervisor's session.
type SupervisorStats struct {
	PingsSent   int
	PongsHeard  int
	MissedPongs int
	// Detections counts Down declarations; EpochChanges counts reboots
	// caught via the heartbeat epoch rather than by silence.
	Detections   int
	EpochChanges int
	// Reprovisions counts completed recoveries (Recovering -> Up).
	Reprovisions int
	// DownTicks is time spent in Down or Recovering.
	DownTicks int
	// Detection latency, in ticks from the last evidence of life to the
	// Down declaration (or epoch-change detection).
	DetectionCount      int
	DetectionTicksTotal int
	DetectionTicksMax   int
}

// MeanDetectionTicks returns the average detection latency.
func (s SupervisorStats) MeanDetectionTicks() float64 {
	if s.DetectionCount == 0 {
		return 0
	}
	return float64(s.DetectionTicksTotal) / float64(s.DetectionCount)
}

// Supervisor is the manager-side liveness watchdog. The manager calls
// ObserveTraffic for every inbound hub frame, ObservePong for decoded
// pongs, and Tick once per Service pass; a returned Action may ask it to
// transmit a ping. When the hub comes back after an outage the supervisor
// latches a re-provisioning request (TakeReprovision) and holds in
// Recovering until the manager reports completion (ObserveReprovisioned).
// All methods are nil-safe so an unsupervised manager pays nothing.
type Supervisor struct {
	cfg   SupervisorConfig
	state SupervisorState
	stats SupervisorStats

	idleTicks    int    // ticks since last inbound frame
	pingSeq      uint32 // last probe sequence sent
	awaitingPong bool
	pongTimer    int // ticks left to wait for the outstanding pong
	misses       int // consecutive unanswered probes
	backoff      int // current Down-state probe backoff
	backoffLeft  int
	sinceLife    int // ticks since last evidence of life
	reprovision  bool
	stallTicks   int // Recovering watchdog: silence while reprovisioning

	epoch      uint32 // hub boot epoch last seen in a pong
	epochKnown bool

	cPings      *telemetry.Counter
	cMisses     *telemetry.Counter
	cDetections *telemetry.Counter
	cRecoveries *telemetry.Counter
	trace       *telemetry.Stream
}

// NewSupervisor builds a supervisor with the given configuration.
func NewSupervisor(cfg SupervisorConfig) *Supervisor {
	return &Supervisor{cfg: cfg.withDefaults()}
}

// SetTelemetry attaches counters (supervisor.pings_sent,
// supervisor.missed_pongs, supervisor.detections, supervisor.recoveries)
// and a trace stream that receives state-change instants. Any argument
// may be nil.
func (s *Supervisor) SetTelemetry(reg *telemetry.Registry, trace *telemetry.Stream) {
	if s == nil {
		return
	}
	s.cPings = reg.Counter("supervisor.pings_sent")
	s.cMisses = reg.Counter("supervisor.missed_pongs")
	s.cDetections = reg.Counter("supervisor.detections")
	s.cRecoveries = reg.Counter("supervisor.recoveries")
	s.trace = trace
}

// State returns the supervisor's current belief. Nil-safe (a nil
// supervisor believes the hub is always Up).
func (s *Supervisor) State() SupervisorState {
	if s == nil {
		return Up
	}
	return s.state
}

// Stats returns the session tally. Nil-safe.
func (s *Supervisor) Stats() SupervisorStats {
	if s == nil {
		return SupervisorStats{}
	}
	return s.stats
}

// Config returns the effective (defaulted) configuration.
func (s *Supervisor) Config() SupervisorConfig { return s.cfg }

// setState transitions and traces.
func (s *Supervisor) setState(to SupervisorState) {
	if s.state == to {
		return
	}
	s.state = to
	s.trace.InstantStr("supervisor.state", "supervisor", "state", to.String())
}

// ObserveTraffic records evidence of life: any decodable inbound frame.
// While Down it triggers recovery; while Recovering it feeds the stall
// watchdog. Nil-safe.
func (s *Supervisor) ObserveTraffic() {
	if s == nil {
		return
	}
	s.idleTicks = 0
	s.sinceLife = 0
	s.stallTicks = 0
	switch s.state {
	case Up, Suspect:
		s.misses = 0
		s.awaitingPong = false
		s.setState(Up)
	case Down:
		s.beginRecovery()
	}
}

// ObservePong records a liveness reply. hb carries the hub's boot epoch
// when the payload decoded (ok); a legacy empty pong still counts as
// life, it just cannot reveal a silent reboot. Nil-safe.
func (s *Supervisor) ObservePong(hb Heartbeat, ok bool) {
	if s == nil {
		return
	}
	s.stats.PongsHeard++
	s.ObserveTraffic()
	if !ok {
		return
	}
	if s.epochKnown && hb.Epoch != s.epoch && (s.state == Up || s.state == Suspect) {
		// The hub answers pings, but with a new boot epoch: it rebooted
		// and lost its condition set without ever going quiet long
		// enough to miss the budget. Skip Down entirely.
		s.stats.EpochChanges++
		s.recordDetection()
		s.beginRecovery()
	}
	s.epoch = hb.Epoch
	s.epochKnown = true
}

// beginRecovery enters Recovering and latches the re-provisioning
// request.
func (s *Supervisor) beginRecovery() {
	s.setState(Recovering)
	s.reprovision = true
	s.stallTicks = 0
	s.awaitingPong = false
	s.misses = 0
	s.backoff = s.cfg.ProbeBackoffTicks
	s.backoffLeft = 0
}

// recordDetection accounts one hub-death detection and its latency.
func (s *Supervisor) recordDetection() {
	s.stats.Detections++
	s.cDetections.Inc()
	s.stats.DetectionCount++
	s.stats.DetectionTicksTotal += s.sinceLife
	if s.sinceLife > s.stats.DetectionTicksMax {
		s.stats.DetectionTicksMax = s.sinceLife
	}
}

// TakeReprovision returns and clears the latched re-provisioning request.
// Nil-safe.
func (s *Supervisor) TakeReprovision() bool {
	if s == nil || !s.reprovision {
		return false
	}
	s.reprovision = false
	return true
}

// ObserveReprovisioned reports that every registered condition has been
// re-pushed and acknowledged; the supervisor returns to Up. Nil-safe.
func (s *Supervisor) ObserveReprovisioned() {
	if s == nil || s.state != Recovering {
		return
	}
	s.stats.Reprovisions++
	s.cRecoveries.Inc()
	s.setState(Up)
	s.idleTicks = 0
	s.sinceLife = 0
}

// Tick advances the supervisor by one manager Service pass and returns
// the action to take. Nil-safe (no action).
func (s *Supervisor) Tick() Action {
	if s == nil {
		return Action{}
	}
	s.sinceLife++
	if s.state == Down || s.state == Recovering {
		s.stats.DownTicks++
	}
	switch s.state {
	case Up, Suspect:
		if s.awaitingPong {
			s.pongTimer--
			if s.pongTimer > 0 {
				return Action{}
			}
			// Probe timed out.
			s.awaitingPong = false
			s.misses++
			s.stats.MissedPongs++
			s.cMisses.Inc()
			if s.misses >= s.cfg.MissBudget {
				s.recordDetection()
				s.setState(Down)
				s.backoff = s.cfg.ProbeBackoffTicks
				s.backoffLeft = s.backoff
				return Action{}
			}
			s.setState(Suspect)
			return s.probe()
		}
		s.idleTicks++
		if s.state == Suspect || s.idleTicks >= s.cfg.PingIntervalTicks {
			return s.probe()
		}
		return Action{}
	case Down:
		s.backoffLeft--
		if s.backoffLeft > 0 {
			return Action{}
		}
		act := s.probe()
		s.backoff = min(s.backoff*2, s.cfg.MaxProbeBackoffTicks)
		s.backoffLeft = s.backoff
		return act
	case Recovering:
		// Stall watchdog: a hub that died again mid-re-provisioning goes
		// quiet; fall back to Down so the fallback keeps sensing and the
		// next recovery latches a fresh re-provisioning pass.
		s.stallTicks++
		if s.stallTicks > s.cfg.TimeoutTicks*s.cfg.MissBudget {
			s.recordDetection()
			s.setState(Down)
			s.backoff = s.cfg.ProbeBackoffTicks
			s.backoffLeft = s.backoff
		}
		return Action{}
	}
	return Action{}
}

// probe arms a ping.
func (s *Supervisor) probe() Action {
	s.pingSeq++
	s.awaitingPong = true
	s.pongTimer = s.cfg.TimeoutTicks
	s.idleTicks = 0
	s.stats.PingsSent++
	s.cPings.Inc()
	return Action{Ping: true, Seq: s.pingSeq}
}
