package resilience

import (
	"fmt"
	"math/rand"
)

// CrashKind classifies a hub failure by what it destroys.
type CrashKind int

const (
	// Reset is a hard reset: the hub loses all pipeline state — pushed
	// conditions, merged machines, sample rings — plus its link buffers,
	// and comes back with a fresh boot epoch.
	Reset CrashKind = iota
	// Hang is a transient lockup (a wedged interrupt handler, a stuck
	// peripheral): the hub stops servicing frames and samples for a
	// bounded window but resumes with its pipeline state intact and the
	// same boot epoch. In-flight UART buffers are still lost.
	Hang
	// Brownout is a power sag deep enough to reboot the microcontroller:
	// behaviorally a Reset, tallied separately because its rate tracks
	// the power supply rather than the firmware.
	Brownout
)

// String returns the crash kind's report name.
func (k CrashKind) String() string {
	switch k {
	case Reset:
		return "reset"
	case Hang:
		return "hang"
	case Brownout:
		return "brownout"
	default:
		return fmt.Sprintf("crash-kind(%d)", int(k))
	}
}

// LosesState reports whether this failure wipes the hub's pipeline state
// (pushed conditions, interpreter state) and bumps the boot epoch.
func (k CrashKind) LosesState() bool { return k != Hang }

// CrashProfile parameterizes the deterministic crash injector. The zero
// value disables crashes entirely — the hub is as immortal as it was
// before this package existed, and every existing output stays
// byte-identical. Ticks are hub Service passes, the same clock the ARQ
// layer runs on.
type CrashProfile struct {
	// Seed initializes the injector's private PRNG; a given profile
	// replays the exact same crash schedule on every run.
	Seed int64
	// MTBFTicks is the mean number of ticks between crash onsets
	// (exponentially distributed). 0 disables the injector.
	MTBFTicks float64
	// MeanDownTicks is the mean outage length (exponential, at least 1
	// tick; default 20).
	MeanDownTicks float64
	// MaxDownTicks caps a single outage (default 10 × MeanDownTicks).
	MaxDownTicks int
	// ResetWeight, HangWeight and BrownoutWeight set the relative
	// frequency of each crash kind. All zero means equal weights.
	ResetWeight, HangWeight, BrownoutWeight float64
}

// Validate checks the profile's parameters.
func (p CrashProfile) Validate() error {
	if p.MTBFTicks < 0 {
		return fmt.Errorf("resilience: MTBFTicks must be >= 0, got %g", p.MTBFTicks)
	}
	if p.MeanDownTicks < 0 {
		return fmt.Errorf("resilience: MeanDownTicks must be >= 0, got %g", p.MeanDownTicks)
	}
	if p.MaxDownTicks < 0 {
		return fmt.Errorf("resilience: MaxDownTicks must be >= 0, got %d", p.MaxDownTicks)
	}
	for _, w := range []struct {
		name string
		v    float64
	}{{"ResetWeight", p.ResetWeight}, {"HangWeight", p.HangWeight}, {"BrownoutWeight", p.BrownoutWeight}} {
		if w.v < 0 {
			return fmt.Errorf("resilience: %s must be >= 0, got %g", w.name, w.v)
		}
	}
	return nil
}

// Enabled reports whether this profile can ever fire a crash.
func (p CrashProfile) Enabled() bool { return p.MTBFTicks > 0 }

// Transition reports what the injector did on one tick.
type Transition struct {
	// Onset is true on the tick a crash begins; Kind is then valid.
	Onset bool
	// Recovered is true on the tick the hub comes back up; Kind is the
	// kind of the outage that just ended.
	Recovered bool
	// Kind of the crash beginning or ending.
	Kind CrashKind
}

// CrashStats tallies one injector's activity.
type CrashStats struct {
	Crashes   int // total onsets
	Resets    int
	Hangs     int
	Brownouts int
	DownTicks int // ticks spent down, cumulative
}

// ScheduledCrash is one precisely timed outage for NewScheduledCrashInjector.
type ScheduledCrash struct {
	AtTick    int // tick of onset (0 = first tick)
	Kind      CrashKind
	DownTicks int // outage length; minimum 1
}

// CrashInjector decides, tick by tick, whether the hub is alive. It is
// either randomized (NewCrashInjector, exponential MTBF and outage
// lengths from a private seeded PRNG) or scripted
// (NewScheduledCrashInjector, for tests that need a crash at an exact
// moment). All methods are nil-safe: a nil injector is a hub that never
// crashes.
type CrashInjector struct {
	profile CrashProfile
	rng     *rand.Rand

	scheduled []ScheduledCrash // scripted mode when non-nil
	schedIdx  int

	tick      int
	down      bool
	kind      CrashKind
	upAt      int // tick at which the current outage ends
	nextOnset int // tick of the next crash (randomized mode)
	stats     CrashStats
}

// NewCrashInjector builds a randomized injector from a profile. A
// disabled profile (MTBFTicks == 0) yields a nil injector, which every
// consumer treats as "no crashes".
func NewCrashInjector(p CrashProfile) (*CrashInjector, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if !p.Enabled() {
		return nil, nil
	}
	if p.MeanDownTicks <= 0 {
		p.MeanDownTicks = 20
	}
	if p.MaxDownTicks <= 0 {
		p.MaxDownTicks = int(10 * p.MeanDownTicks)
	}
	if p.ResetWeight == 0 && p.HangWeight == 0 && p.BrownoutWeight == 0 {
		p.ResetWeight, p.HangWeight, p.BrownoutWeight = 1, 1, 1
	}
	c := &CrashInjector{profile: p, rng: rand.New(rand.NewSource(p.Seed))}
	c.nextOnset = c.tick + c.drawGap()
	return c, nil
}

// NewScheduledCrashInjector builds a scripted injector that fires exactly
// the given outages, in AtTick order. Overlapping entries are coalesced:
// an onset scheduled while an outage is still running is skipped.
func NewScheduledCrashInjector(crashes []ScheduledCrash) *CrashInjector {
	sched := make([]ScheduledCrash, len(crashes))
	copy(sched, crashes)
	for i := range sched {
		if sched[i].DownTicks < 1 {
			sched[i].DownTicks = 1
		}
	}
	return &CrashInjector{scheduled: sched}
}

// drawGap samples the ticks until the next onset (at least 1).
func (c *CrashInjector) drawGap() int {
	return 1 + int(c.rng.ExpFloat64()*c.profile.MTBFTicks)
}

// drawDown samples an outage length in [1, MaxDownTicks].
func (c *CrashInjector) drawDown() int {
	n := 1 + int(c.rng.ExpFloat64()*c.profile.MeanDownTicks)
	if n > c.profile.MaxDownTicks {
		n = c.profile.MaxDownTicks
	}
	if n < 1 {
		n = 1
	}
	return n
}

// drawKind picks a crash kind by profile weight.
func (c *CrashInjector) drawKind() CrashKind {
	total := c.profile.ResetWeight + c.profile.HangWeight + c.profile.BrownoutWeight
	r := c.rng.Float64() * total
	if r < c.profile.ResetWeight {
		return Reset
	}
	if r < c.profile.ResetWeight+c.profile.HangWeight {
		return Hang
	}
	return Brownout
}

// Tick advances the injector by one hub service pass and reports any
// crash onset or recovery happening on this tick. On the onset tick the
// hub is already down; on the recovery tick it is already back up (the
// outage covered exactly DownTicks service passes in between). Nil-safe.
func (c *CrashInjector) Tick() Transition {
	if c == nil {
		return Transition{}
	}
	t := c.tick
	c.tick++
	if c.down {
		if t >= c.upAt {
			c.down = false
			return Transition{Recovered: true, Kind: c.kind}
		}
		c.stats.DownTicks++
		return Transition{}
	}
	if c.scheduled != nil {
		for c.schedIdx < len(c.scheduled) && c.scheduled[c.schedIdx].AtTick < t {
			c.schedIdx++ // fell inside an earlier outage; skip
		}
		if c.schedIdx < len(c.scheduled) && c.scheduled[c.schedIdx].AtTick == t {
			s := c.scheduled[c.schedIdx]
			c.schedIdx++
			return c.onset(t, s.Kind, s.DownTicks)
		}
		return Transition{}
	}
	if t >= c.nextOnset {
		kind := c.drawKind()
		down := c.drawDown()
		tr := c.onset(t, kind, down)
		c.nextOnset = c.upAt + c.drawGap()
		return tr
	}
	return Transition{}
}

// onset starts an outage covering ticks [t, t+downTicks).
func (c *CrashInjector) onset(t int, kind CrashKind, downTicks int) Transition {
	c.down = true
	c.kind = kind
	c.upAt = t + downTicks
	c.stats.Crashes++
	c.stats.DownTicks++
	switch kind {
	case Reset:
		c.stats.Resets++
	case Hang:
		c.stats.Hangs++
	case Brownout:
		c.stats.Brownouts++
	}
	return Transition{Onset: true, Kind: kind}
}

// Down reports whether the hub is currently crashed. Nil-safe.
func (c *CrashInjector) Down() bool { return c != nil && c.down }

// Kind returns the kind of the current (or most recent) outage. Nil-safe.
func (c *CrashInjector) Kind() CrashKind {
	if c == nil {
		return Reset
	}
	return c.kind
}

// Stats returns the injector's tally so far. Nil-safe.
func (c *CrashInjector) Stats() CrashStats {
	if c == nil {
		return CrashStats{}
	}
	return c.stats
}
