// Package resilience models sensor-hub failure and the phone-side
// supervision that recovers from it.
//
// The paper's energy argument rests on the hub staying alive while the
// phone sleeps: a crashed MSP430/LM4F120 silently loses every pushed
// wake-up condition, and with it every future wake event. Real
// co-processor deployments treat peripheral failure as a first-class
// condition; this package supplies the three pieces the repro needs:
//
//   - a deterministic, seedable crash injector (CrashProfile /
//     CrashInjector) that fires hard resets, transient hangs and brownout
//     reboots against the hub node, off by default;
//
//   - a heartbeat codec (Heartbeat): the liveness probe the manager
//     piggybacks on the existing MsgPing/MsgPong pair, carrying a probe
//     sequence number and the hub's boot epoch so even a hub that reboots
//     between two probes — and then answers cheerfully with empty state —
//     is caught;
//
//   - a supervisor state machine (Supervisor) that watches inbound
//     traffic, probes when the line goes quiet, declares the hub down
//     after a bounded miss budget, keeps probing with capped backoff, and
//     latches a re-provisioning request the manager consumes on
//     reconnect.
package resilience

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Heartbeat is the liveness probe payload carried in MsgPing and MsgPong
// frames. Seq matches a pong to the ping that solicited it; Epoch is the
// hub's boot counter, echoed in every pong, so a reboot that happened
// between probes is visible even though the hub answers pings again. An
// empty ping/pong payload remains valid on the wire (the pre-supervision
// liveness check), so old and new endpoints interoperate.
type Heartbeat struct {
	Seq   uint32
	Epoch uint32
}

// HeartbeatSize is the encoded size in bytes.
const HeartbeatSize = 8

// ErrBadHeartbeat reports a ping/pong payload that is neither empty nor a
// well-formed heartbeat.
var ErrBadHeartbeat = errors.New("resilience: malformed heartbeat payload")

// Encode serializes the heartbeat as 8 little-endian bytes.
func (h Heartbeat) Encode() []byte {
	out := make([]byte, HeartbeatSize)
	binary.LittleEndian.PutUint32(out[0:4], h.Seq)
	binary.LittleEndian.PutUint32(out[4:8], h.Epoch)
	return out
}

// DecodeHeartbeat parses a heartbeat payload. Anything but exactly
// HeartbeatSize bytes is ErrBadHeartbeat; the caller decides whether an
// empty payload means a legacy peer or line damage.
func DecodeHeartbeat(p []byte) (Heartbeat, error) {
	if len(p) != HeartbeatSize {
		return Heartbeat{}, fmt.Errorf("%w: %d bytes, want %d", ErrBadHeartbeat, len(p), HeartbeatSize)
	}
	return Heartbeat{
		Seq:   binary.LittleEndian.Uint32(p[0:4]),
		Epoch: binary.LittleEndian.Uint32(p[4:8]),
	}, nil
}
