package resilience

import (
	"bytes"
	"testing"
)

// FuzzHeartbeat throws arbitrary payloads at the heartbeat decoder: no
// input may panic, only exact-size payloads may decode, and every decoded
// heartbeat must re-encode to the identical bytes.
func FuzzHeartbeat(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add(Heartbeat{Seq: 1, Epoch: 1}.Encode())
	f.Add(Heartbeat{Seq: 0xDEADBEEF, Epoch: 0x01020304}.Encode())
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		hb, err := DecodeHeartbeat(data)
		if err != nil {
			if len(data) == HeartbeatSize {
				t.Fatalf("exact-size payload rejected: % x", data)
			}
			return
		}
		if len(data) != HeartbeatSize {
			t.Fatalf("decoded %d-byte payload", len(data))
		}
		if !bytes.Equal(hb.Encode(), data) {
			t.Fatalf("re-encode mismatch: % x -> %+v -> % x", data, hb, hb.Encode())
		}
	})
}
