package apps_test

import (
	"testing"
	"time"

	"sidewinder/internal/apps"
	"sidewinder/internal/core"
	"sidewinder/internal/hub"
	"sidewinder/internal/sensor"
	"sidewinder/internal/sim"
	"sidewinder/internal/tracegen"
)

func robotTrace(t *testing.T) *sensor.Trace {
	t.Helper()
	tr, err := tracegen.Robot(tracegen.RobotConfig{Seed: 101, Duration: 10 * time.Minute, IdleFraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func audioTrace(t *testing.T) *sensor.Trace {
	t.Helper()
	tr, err := tracegen.Audio(tracegen.NewAudioConfig(101, 5*time.Minute, tracegen.CoffeeShopAudio))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestAppInventory(t *testing.T) {
	all := apps.All()
	if len(all) != 6 {
		t.Fatalf("expected the paper's 6 applications, got %d", len(all))
	}
	names := map[string]bool{}
	for _, a := range all {
		if a.Name == "" || a.Label == "" || a.Wake == nil || a.Detector == nil {
			t.Errorf("app %+v incomplete", a.Name)
		}
		if names[a.Name] {
			t.Errorf("duplicate app name %s", a.Name)
		}
		names[a.Name] = true
		if len(a.Channels) == 0 {
			t.Errorf("%s: no channels", a.Name)
		}
		if a.PreBufferSec <= 0 || a.MatchTolSec <= 0 {
			t.Errorf("%s: missing buffering/tolerance config", a.Name)
		}
	}
}

func TestAllWakeConditionsValidate(t *testing.T) {
	cat := core.DefaultCatalog()
	for _, a := range apps.All() {
		plan, err := a.Wake.Validate(cat)
		if err != nil {
			t.Errorf("%s wake condition invalid: %v", a.Name, err)
			continue
		}
		// Every wake condition ends in an admission-control stage
		// (paper §3.7: "Each one ends with an admission control step").
		last := plan.Nodes[len(plan.Nodes)-1]
		switch last.Kind {
		case core.KindMinThreshold, core.KindMaxThreshold, core.KindBandThreshold, core.KindAnd:
		default:
			t.Errorf("%s wake condition ends with %s, not admission control", a.Name, last.Kind)
		}
	}
}

func TestDeviceSelectionMatchesTable2(t *testing.T) {
	cat := core.DefaultCatalog()
	want := map[string]string{
		"steps": "MSP430", "transitions": "MSP430", "headbutts": "MSP430",
		"sirens": "LM4F120", // Table 2's asterisk: FFT needs the bigger part
		"music":  "MSP430", "phrase": "MSP430",
	}
	for _, a := range apps.All() {
		plan, err := a.Wake.Validate(cat)
		if err != nil {
			t.Fatal(err)
		}
		dev, err := hub.SelectDevice(hub.Devices(), plan)
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		if dev.Name != want[a.Name] {
			t.Errorf("%s placed on %s, want %s", a.Name, dev.Name, want[a.Name])
		}
	}
}

func TestAccelDetectorsOnFullTrace(t *testing.T) {
	tr := robotTrace(t)
	for _, a := range apps.AccelApps() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			dets := a.Detector.Detect(tr, 0, tr.Len())
			truth := tr.EventsLabeled(a.Label)
			if len(truth) == 0 {
				t.Fatal("trace has no ground truth for this app")
			}
			recall, precision, _, _ := sim.Match(truth, dets, int(a.MatchTolSec*tr.RateHz))
			if recall < 0.95 {
				t.Errorf("full-trace recall = %.3f, want >= 0.95 (%d truth, %d detections)",
					recall, len(truth), len(dets))
			}
			if precision < 0.75 {
				t.Errorf("full-trace precision = %.3f, want >= 0.75", precision)
			}
		})
	}
}

func TestAudioDetectorsOnFullTrace(t *testing.T) {
	tr := audioTrace(t)
	for _, a := range apps.AudioApps() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			dets := a.Detector.Detect(tr, 0, tr.Len())
			truth := tr.EventsLabeled(a.Label)
			if len(truth) == 0 {
				t.Fatal("trace has no ground truth for this app")
			}
			recall, _, _, _ := sim.Match(truth, dets, int(a.MatchTolSec*tr.RateHz))
			if recall < 0.99 {
				t.Errorf("full-trace recall = %.3f, want ~1 (%d truth, %d detections)",
					recall, len(truth), len(dets))
			}
		})
	}
}

func TestDetectorsEmptyAndClampedRanges(t *testing.T) {
	rtr, atr := robotTrace(t), audioTrace(t)
	for _, a := range apps.All() {
		tr := rtr
		if a.Channels[0] == core.Mic {
			tr = atr
		}
		if got := a.Detector.Detect(tr, 100, 100); got != nil {
			t.Errorf("%s: empty range returned %v", a.Name, got)
		}
		if got := a.Detector.Detect(tr, -50, 10); got != nil && len(got) > 0 {
			// A clamped tiny prefix may legitimately detect something,
			// but must not panic and must stay in range.
			for _, e := range got {
				if e.End > tr.Len() {
					t.Errorf("%s: detection out of range: %+v", a.Name, e)
				}
			}
		}
		// Beyond-end clamps cleanly.
		a.Detector.Detect(tr, tr.Len()-10, tr.Len()+100)
	}
}

func TestStepsWakeConditionFiresOnlyOnWalking(t *testing.T) {
	tr := robotTrace(t)
	res, err := sim.Sidewinder{}.Run(tr, apps.Steps())
	if err != nil {
		t.Fatal(err)
	}
	if res.Recall < 1 {
		t.Errorf("steps Sidewinder recall = %.3f, want 1.0 (conservative condition, paper §2.1.2)", res.Recall)
	}
	// The condition must sleep during idle: awake share well below the
	// active share plus overheads.
	awakeFrac := res.Power.AwakeSec / (res.Power.AsleepSec + res.Power.AwakeSec + res.Power.WakingSec + res.Power.SleepingSec)
	if awakeFrac > 0.6 {
		t.Errorf("steps condition keeps phone awake %.0f%% of a 50%%-idle trace", awakeFrac*100)
	}
}

func TestHeadbuttWakeIsRare(t *testing.T) {
	tr := robotTrace(t)
	res, err := sim.Sidewinder{}.Run(tr, apps.Headbutts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Recall < 1 {
		t.Fatalf("headbutts Sidewinder recall = %.3f", res.Recall)
	}
	truth := len(tr.EventsLabeled(tracegen.LabelHeadbutt))
	if res.Power.WakeUps > 4*truth+4 {
		t.Errorf("headbutt condition woke %d times for %d events", res.Power.WakeUps, truth)
	}
}

func TestMergeEventsHelper(t *testing.T) {
	// Accessible indirectly: phrase detection merges duplicates. Directly
	// exercise via a detector returning overlapping speech hits around
	// one phrase.
	tr := audioTrace(t)
	phrases := tr.EventsLabeled(tracegen.LabelPhrase)
	if len(phrases) == 0 {
		t.Skip("no phrases in this trace")
	}
	p := phrases[0]
	app := apps.PhraseDetection()
	d1 := app.Detector.Detect(tr, p.Start-8*1024, p.End+8*1024)
	for i := 1; i < len(d1); i++ {
		if d1[i].Overlaps(d1[i-1].Start, d1[i-1].End) {
			t.Errorf("phrase detections overlap: %+v %+v", d1[i-1], d1[i])
		}
	}
}
