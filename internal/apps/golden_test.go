package apps_test

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"sidewinder/internal/apps"
	"sidewinder/internal/core"
	"sidewinder/internal/ir"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden IR files")

// TestWakeConditionsMatchGoldenIR pins the compiled intermediate-language
// form of every reference application's wake-up condition. The IR is the
// wire contract between the sensor manager and hub firmware (paper §3.3):
// an accidental change to the catalog's parameter order, the compiler's
// numbering, or an app's pipeline shows up here before it silently breaks
// interoperability.
//
// After an intentional change, regenerate with:
//
//	go test ./internal/apps -run Golden -update-golden
func TestWakeConditionsMatchGoldenIR(t *testing.T) {
	cat := core.DefaultCatalog()
	for _, app := range apps.All() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			plan, err := app.Wake.Validate(cat)
			if err != nil {
				t.Fatal(err)
			}
			got := ir.CompileToText(plan)
			path := filepath.Join("testdata", app.Name+".ir")
			if *updateGolden {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update-golden): %v", err)
			}
			if got != string(want) {
				t.Errorf("compiled IR drifted from golden contract.\n--- got\n%s--- want\n%s", got, want)
			}
		})
	}
}
