// Package apps implements the six continuous-sensing applications of the
// evaluation (paper §3.7): three accelerometer applications driven by the
// robot's actions (Steps, Transitions, Headbutts) and three audio
// applications (Siren Detector, Music Journal, Phrase Detection).
//
// Each application bundles:
//
//   - a main-CPU classifier (Detector) that processes raw sensor data
//     whenever the phone is awake and reports detected events; it is the
//     high-precision second stage of the paper's pipeline-of-increasing-
//     complexity design (§2), and
//
//   - a Sidewinder wake-up condition (a core.Pipeline) built solely from
//     the platform catalog, tuned conservatively for 100% recall at
//     moderate precision (§2.1.2).
package apps

import (
	"sidewinder/internal/core"
	"sidewinder/internal/sensor"
)

// Detector is a main-CPU classifier. Detect scans samples [start, end) of
// the trace and returns detected events in absolute trace indices. The
// detector sees only data the sensing configuration actually delivered to
// the application (awake periods, batches, or hub buffers).
type Detector interface {
	Detect(tr *sensor.Trace, start, end int) []sensor.Event
}

// DetectorFunc adapts a function to the Detector interface.
type DetectorFunc func(tr *sensor.Trace, start, end int) []sensor.Event

// Detect implements Detector.
func (f DetectorFunc) Detect(tr *sensor.Trace, start, end int) []sensor.Event {
	return f(tr, start, end)
}

// App is one continuous-sensing application.
type App struct {
	// Name identifies the application ("steps", "sirens", ...).
	Name string
	// Label is the ground-truth event label the application detects.
	Label string
	// Channels are the sensor channels the application consumes.
	Channels []core.SensorChannel
	// Wake is the application's Sidewinder wake-up condition.
	Wake *core.Pipeline
	// Detector is the main-CPU classifier.
	Detector Detector
	// OracleMergeGapSec merges ground-truth events closer than this into
	// one awake span for the Oracle configuration (steps within a
	// walking bout form one span rather than per-step wake-ups).
	OracleMergeGapSec float64
	// MatchTolSec is the slack allowed when matching detections to
	// ground truth (detector output may be offset by filter latency).
	MatchTolSec float64
	// PreBufferSec is how much raw data the hub buffers before a wake
	// trigger and hands to the application (paper §3.8 "Access to sensor
	// data"); it covers detection latency so the triggering event itself
	// is in the delivered buffer.
	PreBufferSec float64
}

// AccelApps returns the three accelerometer applications (paper §3.7.1).
func AccelApps() []*App {
	return []*App{Steps(), Transitions(), Headbutts()}
}

// AudioApps returns the three audio applications (paper §3.7.2).
func AudioApps() []*App {
	return []*App{Sirens(), MusicJournal(), PhraseDetection()}
}

// All returns every application.
func All() []*App {
	return append(AccelApps(), AudioApps()...)
}

// clampRange clips [start, end) to the trace bounds and reports whether
// anything remains.
func clampRange(tr *sensor.Trace, start, end int) (int, int, bool) {
	n := tr.Len()
	if start < 0 {
		start = 0
	}
	if end > n {
		end = n
	}
	return start, end, start < end
}

// mergeEvents coalesces events of one label that are separated by fewer
// than gap samples. Input must be sorted by start.
func mergeEvents(events []sensor.Event, gap int) []sensor.Event {
	var out []sensor.Event
	for _, e := range events {
		if len(out) > 0 && e.Start-out[len(out)-1].End <= gap && e.Label == out[len(out)-1].Label {
			if e.End > out[len(out)-1].End {
				out[len(out)-1].End = e.End
			}
			continue
		}
		out = append(out, e)
	}
	return out
}
