package apps

import (
	"sidewinder/internal/core"
	"sidewinder/internal/dsp"
	"sidewinder/internal/sensor"
)

// Accelerometer application parameters. The detector constants are the
// paper's (§3.7.1); the wake-up condition parameters are the developer-
// tuned values that give 100% recall on the evaluation traces with
// moderate precision (§2.1.2).
const (
	// Steps (Libby's method): local maxima of the low-passed x-axis
	// acceleration between 2.5 and 4.5 m/s².
	stepMaxLo, stepMaxHi = 2.5, 4.5
	stepSmoothSamples    = 5
	stepRefractorySec    = 0.3

	// Transitions: posture bands from the paper. Standing: z in [9, 11],
	// y in [-1, 1]. Sitting: z in [7.5, 9.5], y in [3.5, 5.5].
	postureWinSec = 0.5

	// Headbutts: local minima of the y-axis between -6.75 and -3.75 m/s².
	headMinLo, headMinHi = -6.75, -3.75
	headRefractorySec    = 0.5
)

// Steps counts the robot's (or user's) steps while it walks.
func Steps() *App {
	wake := core.NewPipeline("steps-wake")
	wake.AddBranch(core.NewBranch(core.AccelX).
		Add(core.MovingAverage(3)).
		Add(core.Window(25, 12, "rectangular")).
		Add(core.Stat("stddev")).
		Add(core.MinThreshold(0.7)))
	return &App{
		Name:              "steps",
		Label:             "step",
		Channels:          []core.SensorChannel{core.AccelX},
		Wake:              wake,
		Detector:          DetectorFunc(detectSteps),
		OracleMergeGapSec: 2,
		MatchTolSec:       0.4,
		PreBufferSec:      2,
	}
}

// detectSteps implements the paper's step detector: low-pass filter the
// x-axis, then report local maxima within [2.5, 4.5] m/s², with a short
// refractory period so one step is not counted twice.
func detectSteps(tr *sensor.Trace, start, end int) []sensor.Event {
	start, end, ok := clampRange(tr, start, end)
	if !ok {
		return nil
	}
	x := tr.Channels[core.AccelX][start:end]
	smooth := movingAverage(x, stepSmoothSamples)
	refractory := int(stepRefractorySec * tr.RateHz)
	var out []sensor.Event
	lastEnd := -refractory
	for _, m := range dsp.LocalMaxima(smooth, stepMaxLo, stepMaxHi) {
		if m.Index-lastEnd < refractory {
			continue
		}
		lastEnd = m.Index
		out = append(out, sensor.Event{
			Label: "step",
			Start: start + m.Index - 2,
			End:   start + m.Index + 3,
		})
	}
	return out
}

// Transitions detects sit-to-stand and stand-to-sit posture changes.
func Transitions() *App {
	wake := core.NewPipeline("transitions-wake")
	wake.AddBranch(core.NewBranch(core.AccelY).
		Add(core.Window(75, 25, "rectangular")).
		Add(core.Stat("range")).
		Add(core.MinThreshold(3.2)))
	return &App{
		Name:              "transitions",
		Label:             "transition",
		Channels:          []core.SensorChannel{core.AccelY, core.AccelZ},
		Wake:              wake,
		Detector:          DetectorFunc(detectTransitions),
		OracleMergeGapSec: 1,
		MatchTolSec:       1.0,
		PreBufferSec:      2,
	}
}

// detectTransitions classifies posture over half-second windows using the
// paper's orientation bands and reports an event whenever the posture
// flips between standing and sitting.
func detectTransitions(tr *sensor.Trace, start, end int) []sensor.Event {
	start, end, ok := clampRange(tr, start, end)
	if !ok {
		return nil
	}
	y := tr.Channels[core.AccelY]
	z := tr.Channels[core.AccelZ]
	win := int(postureWinSec * tr.RateHz)
	if win < 1 {
		win = 1
	}
	const (
		unknownPos = iota
		standingPos
		sittingPos
	)
	classify := func(my, mz float64) int {
		switch {
		case mz >= 9 && mz <= 11 && my >= -1 && my <= 1:
			return standingPos
		case mz >= 7.5 && mz <= 9.5 && my >= 3.5 && my <= 5.5:
			return sittingPos
		default:
			return unknownPos
		}
	}
	var out []sensor.Event
	last := unknownPos
	lastIdx := start
	for i := start; i+win <= end; i += win {
		pos := classify(dsp.Mean(y[i:i+win]), dsp.Mean(z[i:i+win]))
		if pos == unknownPos {
			continue
		}
		if last != unknownPos && pos != last {
			out = append(out, sensor.Event{Label: "transition", Start: lastIdx, End: i + win})
		}
		last = pos
		lastIdx = i
	}
	return out
}

// Headbutts detects the robot's sudden forward head movements, standing in
// for rare, sharp human motions such as falls (paper §3.7.1).
func Headbutts() *App {
	wake := core.NewPipeline("headbutts-wake")
	wake.AddBranch(core.NewBranch(core.AccelY).
		Add(core.MovingAverage(2)).
		Add(core.MaxThreshold(-3.0)))
	return &App{
		Name:              "headbutts",
		Label:             "headbutt",
		Channels:          []core.SensorChannel{core.AccelY},
		Wake:              wake,
		Detector:          DetectorFunc(detectHeadbutts),
		OracleMergeGapSec: 1,
		MatchTolSec:       0.4,
		PreBufferSec:      2,
	}
}

// detectHeadbutts reports local minima of the y-axis within the paper's
// [-6.75, -3.75] m/s² band.
func detectHeadbutts(tr *sensor.Trace, start, end int) []sensor.Event {
	start, end, ok := clampRange(tr, start, end)
	if !ok {
		return nil
	}
	y := tr.Channels[core.AccelY][start:end]
	smooth := movingAverage(y, 3)
	refractory := int(headRefractorySec * tr.RateHz)
	var out []sensor.Event
	lastEnd := -refractory
	for _, m := range dsp.LocalMinima(smooth, headMinLo, headMinHi) {
		if m.Index-lastEnd < refractory {
			continue
		}
		lastEnd = m.Index
		out = append(out, sensor.Event{
			Label: "headbutt",
			Start: start + m.Index - 2,
			End:   start + m.Index + 3,
		})
	}
	return out
}

// movingAverage returns the centered moving average of x with the given
// window (a simple low-pass filter suitable for batch classification).
func movingAverage(x []float64, size int) []float64 {
	if size <= 1 || len(x) == 0 {
		return x
	}
	out := make([]float64, len(x))
	var sum float64
	half := size / 2
	for i := 0; i < len(x)+half; i++ {
		if i < len(x) {
			sum += x[i]
		}
		if i >= size {
			sum -= x[i-size]
		}
		center := i - half
		if center >= 0 && center < len(x) {
			n := size
			if i < size-1 {
				n = i + 1
			} else if i >= len(x) {
				n = size - (i - len(x) + 1)
			}
			if n < 1 {
				n = 1
			}
			out[center] = sum / float64(n)
		}
	}
	return out
}
