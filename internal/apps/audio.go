package apps

import (
	"sidewinder/internal/core"
	"sidewinder/internal/dsp"
	"sidewinder/internal/sensor"
)

// Audio application parameters. Window sizes are in samples at
// core.AudioRateHz (4 kHz): 1024 samples = 256 ms, long enough that one
// window spans more than a syllable, which is what separates speech's
// unstable zero-crossing profile from music's stable one. Thresholds were
// calibrated on generator output (see EXPERIMENTS.md).
const (
	audioWin = 1024

	// Siren detector (paper §3.7.2): 750 Hz high-pass, pitched sound in
	// [850, 1800] Hz lasting longer than 650 ms; at 256 ms windows the
	// sustain requirement rounds up to 4 windows (~1 s of wail, which a
	// sweeping siren easily satisfies while note changes in music rarely
	// do).
	sirenBandLo, sirenBandHi = 850.0, 1800.0
	sirenHighPassHz          = 750.0
	sirenTonality            = 6.5
	sirenSustainWins         = 4

	// Music Journal: high amplitude variance with a stable pitch
	// profile (low variance of per-sub-window zero-crossing rates).
	musicSubwindows = 8
	musicVarMin     = 0.015
	// Sirens are louder than ambient music; the upper variance bound
	// keeps the music condition from waking on them.
	musicVarMax    = 0.06
	musicZCRVarMax = 0.002
	musicSustain   = 3
	// The hub-side condition sustains each branch for 2 windows (512 ms)
	// so isolated voiced-speech windows, which can look pitch-stable, do
	// not wake the phone.
	musicWakeSustain = 3

	// Phrase Detection: speech has bursty amplitude and an unstable
	// zero-crossing profile (voiced/unvoiced alternation).
	speechVarMin      = 0.0015
	speechZCRVarMin   = 0.005
	speechSustain     = 2
	speechWakeSustain = 2
)

// Sirens detects emergency-vehicle sirens. Its FFT-based wake-up condition
// cannot run in real time on the MSP430, forcing the more powerful
// LM4F120 (paper §4.3 and Table 2's asterisk).
func Sirens() *App {
	wake := core.NewPipeline("sirens-wake")
	wake.AddBranch(core.NewBranch(core.Mic).
		Add(core.HighPass(sirenHighPassHz, audioWin)).
		Add(core.FFT()).
		Add(core.SpectralMag()).
		Add(core.Tonality(sirenBandLo, sirenBandHi, core.AudioRateHz)).
		Add(core.MinThresholdSustained(sirenTonality, sirenSustainWins)))
	return &App{
		Name:              "sirens",
		Label:             "siren",
		Channels:          []core.SensorChannel{core.Mic},
		Wake:              wake,
		Detector:          DetectorFunc(detectSirens),
		OracleMergeGapSec: 2,
		MatchTolSec:       1.0,
		PreBufferSec:      2,
	}
}

// detectSirens runs the paper's siren classifier: high-pass at 750 Hz,
// FFT per window, dominant-to-mean magnitude ratio, pitched sounds in
// [850, 1800] Hz sustained longer than 650 ms.
func detectSirens(tr *sensor.Trace, start, end int) []sensor.Event {
	return windowedSustained(tr, start, end, "siren", sirenSustainWins, func(win []float64) bool {
		filtered, err := dsp.HighPassFFT(win, sirenHighPassHz, tr.RateHz)
		if err != nil {
			return false
		}
		ratio, freq, err := dsp.PeakToMeanRatio(filtered, tr.RateHz)
		if err != nil {
			return false
		}
		return ratio >= sirenTonality && freq >= sirenBandLo && freq <= sirenBandHi
	})
}

// MusicJournal recognizes songs playing nearby; identification itself
// (Echoprint in the paper) happens off-device and is outside the energy
// model, so the classifier stops at music detection.
func MusicJournal() *App {
	wake := core.NewPipeline("music-wake")
	wake.AddBranch(
		core.NewBranch(core.Mic).
			Add(core.Window(audioWin, 0, "rectangular")).
			Add(core.Stat("variance")).
			Add(core.BandThresholdSustained(musicVarMin, musicVarMax, musicWakeSustain)),
		core.NewBranch(core.Mic).
			Add(core.Window(audioWin, 0, "rectangular")).
			Add(core.ZCRVariance(musicSubwindows)).
			Add(core.BandThresholdSustained(0, musicZCRVarMax, musicWakeSustain)),
	)
	wake.Add(core.And())
	return &App{
		Name:              "music",
		Label:             "music",
		Channels:          []core.SensorChannel{core.Mic},
		Wake:              wake,
		Detector:          DetectorFunc(detectMusic),
		OracleMergeGapSec: 2,
		MatchTolSec:       1.0,
		PreBufferSec:      2,
	}
}

// detectMusic classifies windows by the paper's two features: variance of
// the amplitude and variance of per-sub-window zero-crossing rates, with
// music requiring a stable pitch profile.
func detectMusic(tr *sensor.Trace, start, end int) []sensor.Event {
	return windowedSustained(tr, start, end, "music", musicSustain, func(win []float64) bool {
		v := dsp.Variance(win)
		zv := zcrVariance(win, musicSubwindows)
		return v >= musicVarMin && v <= musicVarMax && zv <= musicZCRVarMax
	})
}

// PhraseDetection listens for a spoken phrase of interest; speech-to-text
// (the Google Speech API in the paper) runs off-device after wake-up. The
// wake-up condition detects any speech, which is why Sidewinder wakes for
// ~5% of the trace while the oracle wakes for under 1% (paper §5.2).
func PhraseDetection() *App {
	wake := core.NewPipeline("phrase-wake")
	wake.AddBranch(
		core.NewBranch(core.Mic).
			Add(core.Window(audioWin, 0, "rectangular")).
			Add(core.Stat("variance")).
			Add(core.MinThresholdSustained(speechVarMin, speechWakeSustain)),
		core.NewBranch(core.Mic).
			Add(core.Window(audioWin, 0, "rectangular")).
			Add(core.ZCRVariance(musicSubwindows)).
			Add(core.MinThresholdSustained(speechZCRVarMin, speechWakeSustain)),
	)
	wake.Add(core.And())
	return &App{
		Name:              "phrase",
		Label:             "phrase",
		Channels:          []core.SensorChannel{core.Mic},
		Wake:              wake,
		Detector:          DetectorFunc(detectPhrase),
		OracleMergeGapSec: 2,
		MatchTolSec:       1.0,
		PreBufferSec:      2,
	}
}

// detectPhrase finds speech segments in the delivered data and "sends"
// them to the recognizer. The recognizer itself is simulated as exact: it
// reports the phrase when the processed speech actually contains it
// (ground truth), which models a perfect speech-to-text service without
// affecting the wake-up energy under study.
func detectPhrase(tr *sensor.Trace, start, end int) []sensor.Event {
	speech := windowedSustained(tr, start, end, "speech", speechSustain, func(win []float64) bool {
		v := dsp.Variance(win)
		zv := zcrVariance(win, musicSubwindows)
		return v >= speechVarMin && zv >= speechZCRVarMin
	})
	var out []sensor.Event
	for _, seg := range speech {
		for _, gt := range tr.EventsLabeled("phrase") {
			if gt.Overlaps(seg.Start-audioWin, seg.End+audioWin) {
				out = append(out, sensor.Event{Label: "phrase", Start: gt.Start, End: gt.End})
			}
		}
	}
	return mergeEvents(out, 0)
}

// windowedSustained scans [start, end) in non-overlapping windows of
// audioWin samples, evaluates match on each, and emits an event for every
// run of at least sustain consecutive matching windows.
func windowedSustained(tr *sensor.Trace, start, end int, label string, sustain int, match func([]float64) bool) []sensor.Event {
	start, end, ok := clampRange(tr, start, end)
	if !ok {
		return nil
	}
	mic := tr.Channels[core.Mic]
	var out []sensor.Event
	run := 0
	runStart := 0
	flush := func(at int) {
		if run >= sustain {
			out = append(out, sensor.Event{Label: label, Start: runStart, End: at})
		}
		run = 0
	}
	i := start
	for ; i+audioWin <= end; i += audioWin {
		if match(mic[i : i+audioWin]) {
			if run == 0 {
				runStart = i
			}
			run++
		} else {
			flush(i)
		}
	}
	flush(i)
	return out
}

// zcrVariance is the batch version of the hub's zcrVariance feature.
func zcrVariance(win []float64, k int) float64 {
	if k < 2 || len(win) < k {
		return 0
	}
	sub := len(win) / k
	rates := make([]float64, k)
	for i := 0; i < k; i++ {
		rates[i] = dsp.ZeroCrossingRate(win[i*sub : (i+1)*sub])
	}
	return dsp.Variance(rates)
}
