package sim

import (
	"sidewinder/internal/hub"
	"sidewinder/internal/power"
	"sidewinder/internal/telemetry"
)

// This file holds the simulation-side telemetry glue: the strategies and
// the lossy-link replay all deposit energy and emit trace events the same
// way, so the conversions live here once. Everything is nil-safe — with
// telemetry disabled these helpers reduce to a few no-op calls.

// tracePhoneTransitions attaches a transition hook that records every
// phone power-state change as an instant on the stream. A nil stream
// detaches nothing and installs nothing.
func tracePhoneTransitions(ph *power.Phone, s *telemetry.Stream) {
	if s == nil {
		return
	}
	ph.SetTransitionHook(func(from, to power.State) {
		s.InstantStr("phone.state", "power", "state", to.String())
	})
}

// depositPhoneEnergy attributes a finished phone timeline's per-state
// energy to the ledger. The four phone components sum to ph.EnergyMJ()
// exactly (same dwell × draw products).
func depositPhoneEnergy(l *telemetry.Ledger, ph *power.Phone) {
	l.AddEnergyMJ(telemetry.PhoneAsleep, ph.StateEnergyMJ(power.Asleep))
	l.AddEnergyMJ(telemetry.PhoneWaking, ph.StateEnergyMJ(power.WakingUp))
	l.AddEnergyMJ(telemetry.PhoneAwake, ph.StateEnergyMJ(power.Awake))
	l.AddEnergyMJ(telemetry.PhoneFallingAsleep, ph.StateEnergyMJ(power.FallingAsleep))
}

// depositHubEnergy attributes the hub device's constant active draw over
// the run duration, and converts the interpreter profile's per-stage work
// into device cycles on the ledger.
func depositHubEnergy(l *telemetry.Ledger, dev hub.Device, durSec float64, prof *telemetry.InterpProfile) {
	l.AddEnergyMJ(telemetry.HubDevice, dev.ActivePowerMW*durSec)
	prof.DepositCycles(l, dev.CyclesPerFloatOp, dev.CyclesPerIntOp)
}

// emitStageSpans lays the profile's per-stage execution time out as
// consecutive spans on the stream, converting abstract work into seconds
// on the given device. The track reads as "where the hub's busy time
// went"; span order follows kind-sorted stage names.
func emitStageSpans(s *telemetry.Stream, prof *telemetry.InterpProfile, dev hub.Device) {
	if s == nil || prof == nil || dev.ClockHz <= 0 {
		return
	}
	at := 0.0
	for _, st := range prof.Stages() {
		cycles := st.FloatOps*dev.CyclesPerFloatOp + st.IntOps*dev.CyclesPerIntOp
		dur := cycles / dev.ClockHz
		if dur <= 0 {
			continue
		}
		s.Span(st.Kind, "stage", at, dur)
		at += dur
	}
}
