package sim

import (
	"fmt"
	"math"

	"sidewinder/internal/apps"
	"sidewinder/internal/core"
	"sidewinder/internal/hub"
	"sidewinder/internal/interp"
	"sidewinder/internal/ir"
	"sidewinder/internal/power"
	"sidewinder/internal/sensor"
	"sidewinder/internal/telemetry"
)

// Configuration constants shared by the strategies (paper §4.2).
const (
	// dutyAwakeSec is the duty-cycling data-collection window: "wake-up
	// at fixed time intervals to collect sensor data for 4 seconds".
	dutyAwakeSec = 4.0
	// paHoldSec keeps a predefined-activity wake-up alive while
	// significant activity recurs within this horizon.
	paHoldSec = 2.0
	// swIdleHoldSec puts the phone back to sleep after this long without
	// the Sidewinder condition firing.
	swIdleHoldSec = 1.5
	// simBlock is the chunk size the simulator feeds the interpreter's
	// block fast path with; the phone state machine replays each chunk
	// per sample over the fired bitmap, so the choice only affects speed.
	simBlock = 1024
)

// ---------------------------------------------------------------- helpers

// clock tracks simulated time against a phone state machine. When a
// telemetry clock is attached, simulated time is mirrored into it so
// trace streams stamp events at the right position on the timeline.
type clock struct {
	ph   *power.Phone
	t    float64 // seconds since trace start
	rate float64
	n    int // trace length in samples
	tclk *telemetry.Clock
}

func (c *clock) advance(dt float64) {
	c.ph.Advance(dt)
	c.t += dt
	c.tclk.SetSec(c.t)
}

// sampleAt converts a time to a clamped sample index.
func (c *clock) sampleAt(t float64) int {
	i := int(t * c.rate)
	if i < 0 {
		i = 0
	}
	if i > c.n {
		i = c.n
	}
	return i
}

func (c *clock) endSec() float64 { return float64(c.n) / c.rate }

// --------------------------------------------------------- Always Awake

// AlwaysAwake keeps the main processor awake for the entire trace: the
// upper power bound and the recall/precision reference (paper §5.1).
type AlwaysAwake struct{}

// Name implements Strategy.
func (AlwaysAwake) Name() string { return "always-awake" }

// Run implements Strategy.
func (AlwaysAwake) Run(tr *sensor.Trace, app *apps.App) (*Result, error) {
	ph := power.NewPhoneAwake(power.Nexus4())
	ph.Advance(float64(tr.Len()) / tr.RateHz)
	return finish("always-awake", tr, app, ph, 0, []Interval{{0, tr.Len()}}, nil), nil
}

// ----------------------------------------------------------------- Oracle

// Oracle is the hypothetical ideal (paper §4.2): it is asleep except
// exactly when events of interest occur, waking early enough to be usable
// at each event's start. Its detections are the ground truth itself.
type Oracle struct{}

// Name implements Strategy.
func (Oracle) Name() string { return "oracle" }

// Run implements Strategy.
func (Oracle) Run(tr *sensor.Trace, app *apps.App) (*Result, error) {
	profile := power.Nexus4()
	ph := power.NewPhone(profile)
	c := &clock{ph: ph, rate: tr.RateHz, n: tr.Len()}

	truth := tr.EventsLabeled(app.Label)
	gap := int(app.OracleMergeGapSec * tr.RateHz)
	spans := mergeTruthSpans(truth, gap)

	for _, sp := range spans {
		start := float64(sp.Start)/tr.RateHz - profile.TransitionSeconds
		if start < c.t {
			start = c.t
		}
		end := float64(sp.End) / tr.RateHz
		if start > c.t {
			c.advance(start - c.t)
		}
		ph.RequestWake()
		if end > c.t {
			c.advance(end - c.t)
		}
		ph.RequestSleep()
	}
	if rest := c.endSec() - c.t; rest > 0 {
		c.advance(rest)
	}

	res := finish("oracle", tr, app, ph, 0, nil, nil)
	// The oracle detects by definition: perfect recall and precision.
	res.Detections = truth
	res.Truth = truth
	res.Recall, res.Precision = 1, 1
	res.TP, res.FP = len(truth), 0
	return res, nil
}

// mergeTruthSpans coalesces ground-truth events separated by fewer than
// gap samples into single awake spans (steps in one walking bout wake the
// oracle once, not per step).
func mergeTruthSpans(truth []sensor.Event, gap int) []Interval {
	var out []Interval
	for _, e := range truth {
		if n := len(out); n > 0 && e.Start-out[n-1].End <= gap {
			if e.End > out[n-1].End {
				out[n-1].End = e.End
			}
			continue
		}
		out = append(out, Interval{e.Start, e.End})
	}
	return out
}

// ----------------------------------------------------------- Duty Cycling

// DutyCycling wakes at fixed intervals, collects data for 4 seconds, and
// stays awake in 4-second extensions while the application keeps detecting
// events; otherwise it sleeps for SleepSec (paper §4.2).
type DutyCycling struct {
	SleepSec float64
}

// Name implements Strategy.
func (d DutyCycling) Name() string { return fmt.Sprintf("duty-cycle-%.0fs", d.SleepSec) }

// Run implements Strategy.
func (d DutyCycling) Run(tr *sensor.Trace, app *apps.App) (*Result, error) {
	if d.SleepSec <= 0 {
		return nil, fmt.Errorf("sim: duty cycling needs a positive sleep interval")
	}
	ph := power.NewPhone(power.Nexus4())
	c := &clock{ph: ph, rate: tr.RateHz, n: tr.Len()}
	end := c.endSec()
	var intervals []Interval
	var deliveries []Delivery

	for c.t < end {
		ph.RequestWake()
		c.advance(math.Min(power.Nexus4().TransitionSeconds, end-c.t))
		// Awake chunks of 4 s; extend while the app detects something.
		for c.t < end {
			chunkStart := c.t
			c.advance(math.Min(dutyAwakeSec, end-c.t))
			iv := Interval{c.sampleAt(chunkStart), c.sampleAt(c.t)}
			intervals = append(intervals, iv)
			deliveries = append(deliveries, Delivery{Start: iv.Start, End: iv.End, At: iv.End})
			if len(app.Detector.Detect(tr, iv.Start, iv.End)) == 0 {
				break
			}
		}
		if c.t >= end {
			break
		}
		ph.RequestSleep()
		c.advance(math.Min(power.Nexus4().TransitionSeconds, end-c.t))
		c.advance(math.Min(d.SleepSec, end-c.t))
	}
	res := finish(d.Name(), tr, app, ph, 0, intervals, nil)
	res.Deliveries = deliveries
	return res, nil
}

// --------------------------------------------------------------- Batching

// Batching follows the duty-cycling schedule, but sensor data is cached in
// hub memory while the phone sleeps and the whole batch is delivered on
// wake-up: recall is perfect at the cost of detection latency (paper §4.2,
// §5.4). The power model includes the MSP430 doing the caching (§4.3).
type Batching struct {
	SleepSec float64
}

// Name implements Strategy.
func (b Batching) Name() string { return fmt.Sprintf("batching-%.0fs", b.SleepSec) }

// Run implements Strategy.
func (b Batching) Run(tr *sensor.Trace, app *apps.App) (*Result, error) {
	if b.SleepSec <= 0 {
		return nil, fmt.Errorf("sim: batching needs a positive sleep interval")
	}
	ph := power.NewPhone(power.Nexus4())
	c := &clock{ph: ph, rate: tr.RateHz, n: tr.Len()}
	end := c.endSec()
	var intervals []Interval
	var deliveries []Delivery
	delivered := 0

	for c.t < end {
		ph.RequestWake()
		c.advance(math.Min(power.Nexus4().TransitionSeconds, end-c.t))
		for c.t < end {
			c.advance(math.Min(dutyAwakeSec, end-c.t))
			iv := Interval{delivered, c.sampleAt(c.t)}
			delivered = iv.End
			intervals = append(intervals, iv)
			deliveries = append(deliveries, Delivery{Start: iv.Start, End: iv.End, At: iv.End})
			if len(app.Detector.Detect(tr, iv.Start, iv.End)) == 0 {
				break
			}
		}
		if c.t >= end {
			break
		}
		ph.RequestSleep()
		c.advance(math.Min(power.Nexus4().TransitionSeconds, end-c.t))
		c.advance(math.Min(b.SleepSec, end-c.t))
	}
	// Whatever remains in the cache is delivered at trace end.
	if delivered < tr.Len() {
		intervals = append(intervals, Interval{delivered, tr.Len()})
		deliveries = append(deliveries, Delivery{Start: delivered, End: tr.Len(), At: tr.Len()})
	}
	res := finish(b.Name(), tr, app, ph, hub.MSP430().ActivePowerMW, intervals, nil)
	res.Deliveries = deliveries
	return res, nil
}

// ---------------------------------------------------- Predefined Activity

// PAKind selects which hardwired detector a PredefinedActivity hub runs.
type PAKind int

const (
	// SignificantMotion models Android's significant-motion detector: a
	// short-window standard deviation of the acceleration magnitude.
	SignificantMotion PAKind = iota
	// SignificantSound wakes on short-window audio variance (intensity).
	SignificantSound
)

// PredefinedActivity models the manufacturer-hardwired detector
// configuration (paper §4.2): the hub wakes the phone on significant
// motion or sound, regardless of what the application actually wants. The
// threshold is calibrated per §5.3 to the lowest power that retains 100%
// recall. The MSP430 runs the detector and buffers recent raw data.
type PredefinedActivity struct {
	Kind      PAKind
	Threshold float64
}

// PAKindFor returns the detector kind matching an application's sensors.
func PAKindFor(app *apps.App) PAKind {
	for _, ch := range app.Channels {
		if ch == core.Mic {
			return SignificantSound
		}
	}
	return SignificantMotion
}

// Name implements Strategy.
func (p PredefinedActivity) Name() string { return "predefined-activity" }

// Run implements Strategy.
func (p PredefinedActivity) Run(tr *sensor.Trace, app *apps.App) (*Result, error) {
	sig, err := newSignificance(p.Kind, tr)
	if err != nil {
		return nil, err
	}
	ph := power.NewPhone(power.Nexus4())
	c := &clock{ph: ph, rate: tr.RateHz, n: tr.Len()}
	dt := 1 / tr.RateHz
	preBuffer := int(app.PreBufferSec * tr.RateHz)
	hold := int(paHoldSec * tr.RateHz)

	var intervals []Interval
	openStart := -1
	lastSig := -1

	for i := 0; i < tr.Len(); i++ {
		if sig.significant(i, p.Threshold) {
			lastSig = i
			if ph.State() == power.Asleep || ph.State() == power.FallingAsleep {
				ph.RequestWake()
				openStart = i - preBuffer
				if openStart < 0 {
					openStart = 0
				}
			}
		}
		if ph.State() == power.Awake && lastSig >= 0 && i-lastSig > hold {
			ph.RequestSleep()
			intervals = append(intervals, Interval{openStart, i})
			openStart = -1
		}
		c.advance(dt)
	}
	if openStart >= 0 {
		intervals = append(intervals, Interval{openStart, tr.Len()})
	}
	return finish(p.Name(), tr, app, ph, hub.MSP430().ActivePowerMW, intervals, nil), nil
}

// significance computes the streaming significant-motion/sound feature
// with O(1) work per sample.
type significance struct {
	values []float64 // magnitude (motion) or raw audio
	win    int
	sum    float64
	sumSq  float64
}

func newSignificance(kind PAKind, tr *sensor.Trace) (*significance, error) {
	switch kind {
	case SignificantMotion:
		x, okx := tr.Channels[core.AccelX]
		y, oky := tr.Channels[core.AccelY]
		z, okz := tr.Channels[core.AccelZ]
		if !okx || !oky || !okz {
			return nil, fmt.Errorf("sim: significant motion needs all three accelerometer axes")
		}
		mags := make([]float64, len(x))
		for i := range mags {
			mags[i] = math.Sqrt(x[i]*x[i] + y[i]*y[i] + z[i]*z[i])
		}
		return &significance{values: mags, win: int(0.5 * tr.RateHz)}, nil
	case SignificantSound:
		mic, ok := tr.Channels[core.Mic]
		if !ok {
			return nil, fmt.Errorf("sim: significant sound needs the microphone channel")
		}
		return &significance{values: mic, win: 1024}, nil
	}
	return nil, fmt.Errorf("sim: unknown predefined activity kind %d", kind)
}

// significant reports whether the window ending at sample i has standard
// deviation (motion) / variance (sound) at or above the threshold.
func (s *significance) significant(i int, threshold float64) bool {
	v := s.values[i]
	s.sum += v
	s.sumSq += v * v
	if i >= s.win {
		old := s.values[i-s.win]
		s.sum -= old
		s.sumSq -= old * old
	}
	n := float64(min(i+1, s.win))
	if int(n) < s.win {
		return false
	}
	mean := s.sum / n
	variance := s.sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	if s.win == 1024 { // sound: variance is the intensity feature
		return variance >= threshold
	}
	return math.Sqrt(variance) >= threshold
}

// -------------------------------------------------------------- Sidewinder

// Sidewinder runs the application's wake-up condition on the sensor hub:
// the pipeline is validated against the platform catalog, placed on the
// cheapest feasible device, and interpreted over every sample while the
// phone sleeps. A value reaching OUT wakes the phone, which receives the
// hub's buffered raw data (paper §2-3).
type Sidewinder struct {
	// Catalog defaults to core.DefaultCatalog().
	Catalog *core.Catalog
	// Devices defaults to hub.Devices().
	Devices []hub.Device
	// Precision selects the interpreter's numeric substrate (default
	// float64; Q15 models the FPU-less MCU hub on fixed-point arithmetic).
	Precision interp.Precision

	// Telemetry, when enabled, attributes the run's energy to the ledger,
	// profiles the hub interpreter per stage, and traces wake events and
	// phone state transitions. The zero Set changes nothing.
	Telemetry telemetry.Set
	// TraceLabel prefixes the run's trace stream names so parallel
	// evaluation cells stay distinguishable in one trace.
	TraceLabel string
}

// Name implements Strategy.
func (Sidewinder) Name() string { return "sidewinder" }

// Run implements Strategy.
func (s Sidewinder) Run(tr *sensor.Trace, app *apps.App) (*Result, error) {
	cat := s.Catalog
	if cat == nil {
		cat = core.DefaultCatalog()
	}
	devices := s.Devices
	if devices == nil {
		devices = hub.Devices()
	}
	plan, err := app.Wake.Validate(cat)
	if err != nil {
		return nil, fmt.Errorf("sim: validating %s wake condition: %w", app.Name, err)
	}
	dev, err := hub.SelectDevice(devices, plan)
	if err != nil {
		return nil, fmt.Errorf("sim: placing %s wake condition: %w", app.Name, err)
	}
	// The hub executes the DAG-compiled form of the condition: intra-app
	// duplicate subgraphs (e.g. two branches windowing the microphone the
	// same way) run once. Placement above is sized on the unoptimized
	// plan — the conservative bound a hub must satisfy even with the
	// optimizer ablated. The compiled plan produces bit-identical wakes
	// (TestDAGLinearEquivalence).
	exec, _, err := ir.CompilePlan(cat, ir.CompileOptions{}, plan)
	if err != nil {
		return nil, fmt.Errorf("sim: compiling %s wake condition: %w", app.Name, err)
	}
	m, err := interp.NewPrecision(exec, s.Precision)
	if err != nil {
		return nil, err
	}

	ph := power.NewPhone(power.Nexus4())
	c := &clock{ph: ph, rate: tr.RateHz, n: tr.Len()}
	dt := 1 / tr.RateHz
	preBuffer := int(app.PreBufferSec * tr.RateHz)
	hold := int(swIdleHoldSec * tr.RateHz)

	var phoneStream, hubStream *telemetry.Stream
	var profile *telemetry.InterpProfile
	if s.Telemetry.Enabled() {
		c.tclk = &telemetry.Clock{}
		phoneStream = s.Telemetry.Tracer.Stream(s.TraceLabel+"phone", c.tclk)
		hubStream = s.Telemetry.Tracer.Stream(s.TraceLabel+"hub", c.tclk)
		tracePhoneTransitions(ph, phoneStream)
		profile = telemetry.NewInterpProfile()
		m.SetProfile(profile)
	}

	channels := make([][]float64, 0, len(exec.Channels))
	chNames := make([]core.SensorChannel, 0, len(exec.Channels))
	for _, ch := range exec.Channels {
		samples, ok := tr.Channels[ch]
		if !ok {
			return nil, fmt.Errorf("sim: trace %q lacks channel %s required by %s", tr.Name, ch, app.Name)
		}
		channels = append(channels, samples)
		chNames = append(chNames, ch)
	}

	var intervals []Interval
	openStart := -1
	lastFire := -1

	// The hub interpreter runs on the block fast path: each chunk is pushed
	// whole and the resulting wake offsets are spread onto a fired bitmap,
	// then the phone state machine replays the chunk sample by sample. The
	// bitmap preserves the per-sample fired sequence exactly, so the power
	// timeline and telemetry are byte-identical to the per-sample loop.
	fired := make([]bool, simBlock)
	for base := 0; base < tr.Len(); base += simBlock {
		end := base + simBlock
		if end > tr.Len() {
			end = tr.Len()
		}
		f := fired[:end-base]
		for k := range f {
			f[k] = false
		}
		for ci, samples := range channels {
			for _, w := range m.PushBlock(chNames[ci], samples[base:end]) {
				f[w.Off] = true
			}
		}
		for k := range f {
			i := base + k
			if f[k] {
				lastFire = i
				hubStream.Instant1("wake.sent", "hub", "sample", float64(i))
				if ph.State() == power.Asleep || ph.State() == power.FallingAsleep {
					ph.RequestWake()
					openStart = i - preBuffer
					if openStart < 0 {
						openStart = 0
					}
				}
			}
			if ph.State() == power.Awake && lastFire >= 0 && i-lastFire > hold {
				ph.RequestSleep()
				intervals = append(intervals, Interval{openStart, i})
				openStart = -1
			}
			c.advance(dt)
		}
	}
	if openStart >= 0 {
		intervals = append(intervals, Interval{openStart, tr.Len()})
	}

	if s.Telemetry.Enabled() {
		led := s.Telemetry.LedgerSink()
		depositPhoneEnergy(led, ph)
		depositHubEnergy(led, dev, ph.TotalSeconds(), profile)
		emitStageSpans(hubStream, profile, dev)
	}

	res := finish(s.Name(), tr, app, ph, dev.ActivePowerMW, intervals, nil)
	res.Device = dev.Name
	res.HubUtilization = dev.Utilization(plan)
	return res, nil
}
