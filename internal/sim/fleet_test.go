package sim

import (
	"math"
	"reflect"
	"testing"
	"time"

	"sidewinder/internal/sensor"
	"sidewinder/internal/telemetry"
	"sidewinder/internal/tracegen"
)

// fleetTraces builds one small accel and one small audio trace pool.
func fleetTraces(t *testing.T) (accel, audio []*sensor.Trace) {
	t.Helper()
	robot, err := tracegen.Robot(tracegen.RobotConfig{Seed: 3, Duration: time.Minute, IdleFraction: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	human, err := tracegen.Human(tracegen.HumanConfig{Seed: 5, Duration: time.Minute, Profile: tracegen.Commute})
	if err != nil {
		t.Fatal(err)
	}
	office, err := tracegen.Audio(tracegen.NewAudioConfig(7, 20*time.Second, tracegen.OfficeAudio))
	if err != nil {
		t.Fatal(err)
	}
	return []*sensor.Trace{robot, human}, []*sensor.Trace{office}
}

func TestFleetRunDeterministicAcrossWorkers(t *testing.T) {
	accel, audio := fleetTraces(t)
	cfg := FleetRunConfig{
		Devices: 10, AppsPerDevice: 4, Seed: 42,
		Accel: accel, Audio: audio,
	}
	cfg.Workers = 1
	serial, err := FleetRun(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	parallel, err := FleetRun(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("fleet results differ across worker counts:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
	if serial.Conditions != cfg.Devices*cfg.AppsPerDevice {
		t.Errorf("conditions = %d, want %d", serial.Conditions, cfg.Devices*cfg.AppsPerDevice)
	}
	if serial.Admitted+serial.Degraded != serial.Conditions {
		t.Errorf("admitted %d + degraded %d != conditions %d",
			serial.Admitted, serial.Degraded, serial.Conditions)
	}
}

func TestFleetRunSeedChangesPopulation(t *testing.T) {
	accel, audio := fleetTraces(t)
	cfg := FleetRunConfig{Devices: 10, AppsPerDevice: 3, Seed: 1, Workers: 1, Accel: accel, Audio: audio}
	a, err := FleetRun(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 2
	b, err := FleetRun(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Cells, b.Cells) {
		t.Error("different seeds drew identical populations")
	}
}

// TestFleetLedgerConservation: with telemetry attached, the ledger's
// total must equal the sum of per-cell energies, and the phone.fallback
// component must carry exactly the degraded conditions' duty-cycle draw.
func TestFleetLedgerConservation(t *testing.T) {
	accel, audio := fleetTraces(t)
	set := telemetry.Set{Ledger: telemetry.NewLedger()}
	// M=6 over three audio apps makes all-three-distinct draws likely,
	// and all three audio conditions together overflow the LM4F120's RAM,
	// so the population contains degraded conditions.
	res, err := FleetRun(FleetRunConfig{
		Devices: 12, AppsPerDevice: 6, Seed: 9, Workers: 4,
		Accel: accel, Audio: audio, Telemetry: set,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded == 0 {
		t.Fatal("population has no degraded conditions; conservation check is vacuous")
	}
	var wantTotal, wantFallback float64
	for _, c := range res.Cells {
		wantTotal += c.TotalMJ
		wantFallback += c.FallbackEnergyMJ
	}
	snap := set.Ledger.Snapshot()
	if math.Abs(snap.TotalMJ-wantTotal) > 1e-9 {
		t.Errorf("ledger total %.12f mJ != summed cells %.12f mJ", snap.TotalMJ, wantTotal)
	}
	gotFallback := snap.EnergyMJ[telemetry.PhoneFallback.String()]
	if math.Abs(gotFallback-wantFallback) > 1e-9 {
		t.Errorf("ledger phone.fallback %.12f mJ != summed cells %.12f mJ", gotFallback, wantFallback)
	}
	if wantFallback <= 0 {
		t.Error("degraded conditions billed no fallback energy")
	}
}

// TestFleetPlacementInvariants checks each cell's placement story: accel
// mixes always fit (usually on the MSP430), a degraded cell sits on the
// most capable device, and a cell degrades only if its distinct app count
// genuinely overflows every device.
func TestFleetPlacementInvariants(t *testing.T) {
	accel, audio := fleetTraces(t)
	res, err := FleetRun(FleetRunConfig{
		Devices: 16, AppsPerDevice: 6, Seed: 11, Workers: 4,
		Accel: accel, Audio: audio,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sawAccel, sawAudio bool
	for i, c := range res.Cells {
		switch c.Modality {
		case "accel":
			sawAccel = true
			if c.Degraded != 0 {
				t.Errorf("cell %d: accel mix degraded %d conditions", i, c.Degraded)
			}
		case "audio":
			sawAudio = true
			if c.Device == "MSP430" && c.Degraded != 0 {
				t.Errorf("cell %d: degraded on MSP430 — ladder should have tried LM4F120", i)
			}
		default:
			t.Fatalf("cell %d: unknown modality %q", i, c.Modality)
		}
		if c.CycleFrac > 1 || c.RAMFrac > 1 {
			t.Errorf("cell %d: admitted set exceeds budget (%.2f cycles, %.2f RAM)", i, c.CycleFrac, c.RAMFrac)
		}
		if c.Admitted+c.Degraded != len(c.Apps) {
			t.Errorf("cell %d: %d+%d placed != %d drawn", i, c.Admitted, c.Degraded, len(c.Apps))
		}
		if c.Admitted > 0 && c.HubEnergyMJ <= 0 {
			t.Errorf("cell %d: hub hosts conditions but drew no energy", i)
		}
		if c.Degraded > 0 && c.FallbackEnergyMJ <= 0 {
			t.Errorf("cell %d: degraded conditions but no fallback energy", i)
		}
	}
	if !sawAccel || !sawAudio {
		t.Errorf("population missed a modality (accel=%v audio=%v)", sawAccel, sawAudio)
	}
}

func TestFleetRunErrors(t *testing.T) {
	accel, _ := fleetTraces(t)
	if _, err := (FleetRun(FleetRunConfig{Devices: 0, AppsPerDevice: 1, Accel: accel})); err == nil {
		t.Error("zero population accepted")
	}
	if _, err := (FleetRun(FleetRunConfig{Devices: 1, AppsPerDevice: 0, Accel: accel})); err == nil {
		t.Error("zero app mix accepted")
	}
	if _, err := (FleetRun(FleetRunConfig{Devices: 1, AppsPerDevice: 1})); err == nil {
		t.Error("empty trace pools accepted")
	}
}

func TestQuantile(t *testing.T) {
	v := []float64{5, 1, 3, 2, 4}
	if got := quantile(v, 0.5); got != 3 {
		t.Errorf("p50 = %g, want 3", got)
	}
	if got := quantile(v, 0.9); got != 5 {
		t.Errorf("p90 = %g, want 5", got)
	}
	if got := quantile(nil, 0.5); got != 0 {
		t.Errorf("empty quantile = %g", got)
	}
	if got := mean(nil); got != 0 {
		t.Errorf("empty mean = %g", got)
	}
}

// TestFleetCellPhoneStateSplit pins the per-state phone energy split the
// fleet daemon's streaming replay depends on: the four entries sum to
// PhoneEnergyMJ exactly, and depositing a cell via DepositEnergy puts
// precisely TotalMJ on a ledger.
func TestFleetCellPhoneStateSplit(t *testing.T) {
	accel, audio := fleetTraces(t)
	res, err := FleetRun(FleetRunConfig{
		Devices: 8, AppsPerDevice: 3, Seed: 9,
		Accel: accel, Audio: audio,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range res.Cells {
		var sum float64
		for _, v := range c.PhoneStateMJ {
			sum += v
		}
		if math.Abs(sum-c.PhoneEnergyMJ) > 1e-9 {
			t.Errorf("cell %d: state split sums to %g, PhoneEnergyMJ %g", i, sum, c.PhoneEnergyMJ)
		}
		led := telemetry.NewLedger()
		c.DepositEnergy(led)
		if math.Abs(led.TotalMJ()-c.TotalMJ) > 1e-9 {
			t.Errorf("cell %d: DepositEnergy total %g, cell TotalMJ %g", i, led.TotalMJ(), c.TotalMJ)
		}
	}
}
