package sim

import (
	"math"
	"reflect"
	"testing"
	"time"

	"sidewinder/internal/adapt"
	"sidewinder/internal/apps"
	"sidewinder/internal/core"
	"sidewinder/internal/hub"
	"sidewinder/internal/interp"
	"sidewinder/internal/sched"
	"sidewinder/internal/sensor"
	"sidewinder/internal/telemetry"
	"sidewinder/internal/tracegen"
)

// adaptiveCombos is the property-test corpus: both continuous
// accelerometer conditions on a mixed robot trace, and every audio
// application on a generated environment — the combos span both hub
// devices, the Q15 rung, the decimation rungs, a re-admission veto
// (music) and the AIMD threshold axis (phrase).
func adaptiveCombos(t *testing.T) []struct {
	app *apps.App
	tr  *sensor.Trace
} {
	t.Helper()
	robot := robotTrace(t, 0.5)
	out := []struct {
		app *apps.App
		tr  *sensor.Trace
	}{
		{apps.Steps(), robot},
		{apps.Transitions(), robot},
	}
	envs := tracegen.AudioEnvironments()
	for i, app := range apps.AudioApps() {
		env := envs[i%len(envs)]
		cfg := tracegen.NewAudioConfig(1+int64(i)*101, 4*time.Minute, env)
		tr, err := tracegen.Audio(cfg)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, struct {
			app *apps.App
			tr  *sensor.Trace
		}{app, tr})
	}
	return out
}

// adaptiveTestConfig shortens patience/cooldown the same way the eval
// sweep does, so minutes-long traces exercise the whole ladder.
func adaptiveTestConfig() adapt.Config {
	cfg := adapt.DefaultConfig()
	cfg.Patience = 3
	cfg.Cooldown = 6
	return cfg
}

func deviceByName(t *testing.T, name string) hub.Device {
	t.Helper()
	for _, d := range hub.Devices() {
		if d.Name == name {
			return d
		}
	}
	t.Fatalf("unknown device %q", name)
	return hub.Device{}
}

// TestAdaptiveBudgetAndLedgerProperties pins the two contracts every
// adaptation sequence must honor, on every corpus combo:
//
//  1. Budget invariance — the configuration resident at the end of the
//     run, re-resolved from its knobs exactly as the simulator admitted
//     it, fits the placed device's cycle/RAM budget and demands no more
//     cycles than the statically pushed program. Adaptation can only
//     move demand down.
//  2. Ledger conservation — AdaptedMJ + SavingsMJ == StaticMJ to 1e-9,
//     the ledger's hub.device and adapt.savings components carry exactly
//     those quantities, and the phone components still sum to the power
//     report's phone share. Savings are never negative, and across the
//     corpus they are strictly positive (the experiment's acceptance
//     criterion), with the observed missed-wake rate inside the bound.
func TestAdaptiveBudgetAndLedgerProperties(t *testing.T) {
	cfg := adaptiveTestConfig()
	cat := core.DefaultCatalog()
	totalSavings := 0.0
	for _, combo := range adaptiveCombos(t) {
		led := telemetry.NewLedger()
		r, err := AdaptiveSidewinder{Config: cfg, Telemetry: telemetry.Set{Ledger: led}}.Run(combo.tr, combo.app)
		if err != nil {
			t.Fatalf("%s/%s: %v", combo.app.Name, combo.tr.Name, err)
		}
		a := r.Adapt
		if a == nil {
			t.Fatalf("%s: no adaptation stats", combo.app.Name)
		}

		// Property 1: the final resident configuration re-admits cleanly.
		base, err := combo.app.Wake.Validate(cat)
		if err != nil {
			t.Fatal(err)
		}
		dev := deviceByName(t, r.Device)
		budget := sched.BudgetFor(dev)
		baseF, baseI, _ := adapt.Demand(base, interp.Float64)
		plan, err := adapt.Reparameterize(cat, base, a.FinalKnobs)
		if err != nil {
			t.Fatalf("%s: final knobs %+v do not reparameterize: %v", combo.app.Name, a.FinalKnobs, err)
		}
		f, i, mem := adapt.Demand(plan, a.FinalKnobs.Precision)
		if !budget.Fits(f, i, mem) {
			t.Errorf("%s: final configuration exceeds %s budget (f=%g i=%g mem=%d)",
				combo.app.Name, r.Device, f, i, mem)
		}
		if budget.Cycles(f, i) > budget.Cycles(baseF, baseI) {
			t.Errorf("%s: adapted demand %.0f cyc/s above static %.0f cyc/s",
				combo.app.Name, budget.Cycles(f, i), budget.Cycles(baseF, baseI))
		}
		// Knobs stay inside the configured bounds.
		k := a.FinalKnobs
		if k.Decimation < 1 || k.Decimation > cfg.MaxDecimation ||
			k.WindowScale < 1 || k.WindowScale > cfg.MaxWindowScale ||
			k.ThresholdFactor < 1 || k.ThresholdFactor > cfg.ThresholdMax ||
			(k.Precision == interp.Q15 && !cfg.AllowQ15) {
			t.Errorf("%s: final knobs %+v escape config bounds", combo.app.Name, k)
		}

		// Property 2: energy conservation at 1e-9.
		if a.SavingsMJ < -1e-9 {
			t.Errorf("%s: negative savings %.12g mJ", combo.app.Name, a.SavingsMJ)
		}
		if diff := math.Abs(a.AdaptedMJ + a.SavingsMJ - a.StaticMJ); diff > 1e-9*math.Max(1, a.StaticMJ) {
			t.Errorf("%s: adapted %.12g + savings %.12g != static %.12g",
				combo.app.Name, a.AdaptedMJ, a.SavingsMJ, a.StaticMJ)
		}
		if diff := math.Abs(led.EnergyMJ(telemetry.HubDevice) - a.AdaptedMJ); diff > 1e-9*math.Max(1, a.AdaptedMJ) {
			t.Errorf("%s: ledger hub.device %.12g != adapted %.12g",
				combo.app.Name, led.EnergyMJ(telemetry.HubDevice), a.AdaptedMJ)
		}
		if diff := math.Abs(led.EnergyMJ(telemetry.AdaptSavings) - a.SavingsMJ); diff > 1e-9*math.Max(1, a.SavingsMJ) {
			t.Errorf("%s: ledger adapt.savings %.12g != savings %.12g",
				combo.app.Name, led.EnergyMJ(telemetry.AdaptSavings), a.SavingsMJ)
		}
		dur := r.Power.AsleepSec + r.Power.WakingSec + r.Power.AwakeSec + r.Power.SleepingSec
		var phone float64
		for _, c := range []telemetry.Component{
			telemetry.PhoneAsleep, telemetry.PhoneWaking,
			telemetry.PhoneAwake, telemetry.PhoneFallingAsleep,
		} {
			phone += led.EnergyMJ(c)
		}
		if diff := math.Abs(phone - r.Power.PhoneAvgMW*dur); diff > 1e-9*math.Max(1, phone) {
			t.Errorf("%s: phone components %.12g != report %.12g",
				combo.app.Name, phone, r.Power.PhoneAvgMW*dur)
		}
		// Everything the ledger holds beyond the savings attribution is
		// energy the run actually spent.
		spent := led.TotalMJ() - led.EnergyMJ(telemetry.AdaptSavings)
		if diff := math.Abs(spent - r.Power.TotalAvgMW*dur); diff > 1e-9*math.Max(1, spent) {
			t.Errorf("%s: ledger spend %.12g != run aggregate %.12g",
				combo.app.Name, spent, r.Power.TotalAvgMW*dur)
		}

		if a.MissedRate > cfg.MissedWakeBound+1e-12 {
			t.Errorf("%s: missed-wake rate %.3f above bound %.3f",
				combo.app.Name, a.MissedRate, cfg.MissedWakeBound)
		}
		totalSavings += a.SavingsMJ
	}
	if totalSavings <= 0 {
		t.Errorf("corpus-wide savings %.3f mJ, want > 0", totalSavings)
	}
}

// TestAdaptiveFrozenArmIsStatic: the frozen control arm must bill exactly
// the static counterfactual — zero savings by construction, no adoptions,
// baseline knobs — so the experiment's delta is purely the policy.
func TestAdaptiveFrozenArmIsStatic(t *testing.T) {
	cfg := adaptiveTestConfig()
	for _, combo := range adaptiveCombos(t) {
		r, err := AdaptiveSidewinder{Config: cfg, Frozen: true}.Run(combo.tr, combo.app)
		if err != nil {
			t.Fatalf("%s: %v", combo.app.Name, err)
		}
		a := r.Adapt
		if a.SavingsMJ != 0 {
			t.Errorf("%s: frozen arm saved %.12g mJ, want exactly 0", combo.app.Name, a.SavingsMJ)
		}
		if a.Adoptions != 0 || a.Changes != 0 {
			t.Errorf("%s: frozen arm adapted: %+v", combo.app.Name, a)
		}
		k := a.FinalKnobs
		if k.Decimation != 1 || k.WindowScale != 1 || k.ThresholdFactor != 1 || k.Precision != interp.Float64 {
			t.Errorf("%s: frozen arm moved knobs: %+v", combo.app.Name, k)
		}
	}
}

// TestAdaptiveDeterminism: the policy is driven only by the trace, so two
// runs are identical and telemetry instrumentation changes nothing — the
// foundation of the CI worker-invariance leg.
func TestAdaptiveDeterminism(t *testing.T) {
	cfg := adaptiveTestConfig()
	combos := adaptiveCombos(t)
	for _, combo := range combos[:3] { // steps, transitions, first audio app
		bare1, err := AdaptiveSidewinder{Config: cfg}.Run(combo.tr, combo.app)
		if err != nil {
			t.Fatal(err)
		}
		bare2, err := AdaptiveSidewinder{Config: cfg}.Run(combo.tr, combo.app)
		if err != nil {
			t.Fatal(err)
		}
		if bare1.Power != bare2.Power || bare1.Recall != bare2.Recall {
			t.Errorf("%s: repeated run diverged", combo.app.Name)
		}
		if !reflect.DeepEqual(bare1.Adapt, bare2.Adapt) {
			t.Errorf("%s: adaptation stats diverged:\n%+v\n%+v", combo.app.Name, bare1.Adapt, bare2.Adapt)
		}
		instr, err := AdaptiveSidewinder{Config: cfg, Telemetry: telemetry.Set{
			Metrics: telemetry.NewRegistry(),
			Ledger:  telemetry.NewLedger(),
			Tracer:  telemetry.NewTracer(),
		}}.Run(combo.tr, combo.app)
		if err != nil {
			t.Fatal(err)
		}
		if bare1.Power != instr.Power || !reflect.DeepEqual(bare1.Adapt, instr.Adapt) {
			t.Errorf("%s: telemetry changed the run", combo.app.Name)
		}
	}
}

// TestAdaptiveValidation covers the error paths: an app whose channels
// the trace lacks, and a config whose every non-baseline rung is
// unreachable (the engine then never leaves the pushed program).
func TestAdaptiveValidation(t *testing.T) {
	tr := robotTrace(t, 0.5)
	if _, err := (AdaptiveSidewinder{}).Run(tr, apps.Sirens()); err == nil {
		t.Error("missing mic channel must error")
	}
	cfg := adapt.DefaultConfig()
	cfg.MaxDecimation = 1
	cfg.AllowQ15 = false
	cfg.Patience = 1
	r, err := AdaptiveSidewinder{Config: cfg}.Run(tr, apps.Steps())
	if err != nil {
		t.Fatal(err)
	}
	if k := r.Adapt.FinalKnobs; k.Decimation != 1 || k.Precision != interp.Float64 {
		t.Errorf("single-rung ladder escaped baseline: %+v", k)
	}
}
