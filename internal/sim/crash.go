package sim

// Crash-resilience replay: the full manager/link/hub stack with a fault
// model on the HUB rather than the wire. The hub crashes (hard reset,
// transient hang, brownout reboot) under a deterministic seeded injector;
// the manager's supervisor detects the outage via heartbeats, probes with
// capped backoff, and re-provisions every condition on reconnect, while
// the phone degrades to fallback sensing so events occurring during the
// outage are caught rather than structurally lost.
//
// Wake accounting runs against an oracle interpreter — the same wake-up
// condition replayed continuously outside the failing stack — and every
// oracle wake is attributed to exactly one window of the timeline:
//
//   hub window        supervisor believes the hub is up, and it is
//   fallback window   supervisor is in Down/Recovering: fallback sensing
//                     (always-awake or duty-cycle) covers the event
//   detection window  the hub is dead but the supervisor has not noticed
//                     yet — the exposure bounded by the miss budget
//   structural loss   the hub is "up" with no conditions loaded: the wake
//                     is gone and nothing even knows. This is the
//                     unsupervised failure mode; with a supervisor it
//                     must be zero.

import (
	"errors"
	"fmt"

	"sidewinder/internal/apps"
	"sidewinder/internal/interp"
	"sidewinder/internal/link"
	"sidewinder/internal/manager"
	"sidewinder/internal/power"
	"sidewinder/internal/resilience"
	"sidewinder/internal/sensor"
	"sidewinder/internal/telemetry"
)

// FallbackMode selects what the phone does while the supervisor believes
// the hub is down.
type FallbackMode int

const (
	// FallbackAlwaysAwake keeps the main processor awake for the whole
	// outage: every event is caught immediately, at the awake draw.
	FallbackAlwaysAwake FallbackMode = iota
	// FallbackDutyCycle runs the duty-cycling schedule instead: cheaper,
	// and events are still caught — sensor data buffers across the sleep
	// interval (batching-style) and is examined on the next waking — at
	// the cost of detection latency.
	FallbackDutyCycle
)

// String returns the mode's report name.
func (m FallbackMode) String() string {
	switch m {
	case FallbackAlwaysAwake:
		return "always-awake"
	case FallbackDutyCycle:
		return "duty-cycle"
	default:
		return fmt.Sprintf("fallback(%d)", int(m))
	}
}

// CrashRunConfig parameterizes one crash-resilience replay.
type CrashRunConfig struct {
	// Crash is the hub failure regime. A disabled profile (zero MTBF)
	// replays an immortal hub — the baseline.
	Crash resilience.CrashProfile
	// Supervisor, when non-nil, enables the manager-side watchdog with
	// this configuration. nil replays the unsupervised stack, which is
	// how structural loss becomes visible.
	Supervisor *resilience.SupervisorConfig
	// Fallback selects the phone's degraded sensing mode during detected
	// outages. Only meaningful with a supervisor.
	Fallback FallbackMode
	// FallbackSleepSec is the duty-cycle fallback's sleep interval
	// (default 10 s).
	FallbackSleepSec float64
	// ARQ protects the wire (default: enabled with zero config — the
	// supervised protocol assumes reliable config pushes).
	ARQ *link.ARQConfig
	// BufSamples is the hub's per-channel raw-data ring (default 32).
	BufSamples int

	// Telemetry, when enabled, instruments the run: supervisor counters
	// and state instants, crash/recovery events, outage spans, and an
	// energy ledger with the fallback draw as its own component.
	Telemetry telemetry.Set
	// TraceLabel prefixes the run's trace stream names.
	TraceLabel string
}

// CrashResult reports wake attribution, resilience accounting and energy
// for one replay.
type CrashResult struct {
	// OracleWakes is the total the condition fires when replayed outside
	// the failing stack; the four windows below partition it exactly.
	OracleWakes           int
	HubWindowWakes        int
	FallbackWakes         int
	DetectionWindowWakes  int
	StructurallyLostWakes int

	HubWakes       int // wake frames the live hub handed to the link
	DeliveredWakes int // wake events that reached the listener
	PushAttempts   int

	Crash               resilience.CrashStats
	Supervisor          resilience.SupervisorStats
	Reprovision         manager.ReprovisionStats
	DetectionLatencySec float64 // mean time from hub death to Down
	HubUpSec            float64 // hub alive time (its energy base)
	FallbackSec         float64 // time spent in fallback sensing

	PhoneEnergyMJ    float64 // supervised-normal phone machine energy
	FallbackEnergyMJ float64 // extra draw of fallback sensing windows
	HubEnergyMJ      float64 // hub draw over its alive time only
	LinkEnergyMJ     float64 // wire occupancy including reprovisioning
	TotalMJ          float64
	TotalAvgMW       float64

	Stats manager.LinkStats
}

// fallbackAvgMW prices one second of fallback sensing.
func fallbackAvgMW(mode FallbackMode, sleepSec float64, p power.Profile) float64 {
	switch mode {
	case FallbackDutyCycle:
		// One duty period: wake transition, 4 s collecting, sleep
		// transition, then the sleep interval.
		period := 2*p.TransitionSeconds + dutyAwakeSec + sleepSec
		energy := p.TransitionSeconds*(p.WakeTransitionMW+p.SleepTransition) +
			dutyAwakeSec*p.AwakeMW + sleepSec*p.AsleepMW
		return energy / period
	default:
		return p.AwakeMW
	}
}

// CrashRun replays an application's wake-up condition through the full
// stack while the hub crashes on the injector's schedule, and measures
// what the supervision subsystem saves: wake attribution across the
// timeline windows, detection latency, re-provisioning cost, and the
// energy split between normal operation and fallback sensing.
//
// The clock convention is one Service pass per side per trace sample, so
// supervisor and injector ticks are samples and latencies convert to
// seconds by dividing by the trace rate.
func CrashRun(tr *sensor.Trace, app *apps.App, cfg CrashRunConfig) (*CrashResult, error) {
	bufSamples := cfg.BufSamples
	if bufSamples <= 0 {
		bufSamples = 32
	}
	arq := cfg.ARQ
	if arq == nil {
		arq = &link.ARQConfig{}
	}
	sleepSec := cfg.FallbackSleepSec
	if sleepSec <= 0 {
		sleepSec = 10
	}
	clk := &telemetry.Clock{}
	bed, err := manager.NewTestbed(manager.TestbedConfig{
		BufSamples: bufSamples,
		ARQ:        arq,
		Supervisor: cfg.Supervisor,
		Telemetry:  cfg.Telemetry,
		Clock:      clk,
		TraceLabel: cfg.TraceLabel,
	})
	if err != nil {
		return nil, err
	}

	// The oracle interpreter replays the same condition continuously,
	// outside the failing stack: its wakes are what SHOULD happen.
	plan, err := app.Wake.Validate(bed.Manager.Catalog())
	if err != nil {
		return nil, err
	}
	oracle, err := interp.New(plan)
	if err != nil {
		return nil, err
	}

	profile := power.Nexus4()
	ph := power.NewPhone(profile)
	phoneStream, _, _ := bed.Streams()
	tracePhoneTransitions(ph, phoneStream)

	res := &CrashResult{}
	lastDelivery := -1
	curSample := 0
	id, err := bed.Manager.Push(app.Wake, manager.ListenerFunc(func(e manager.Event) {
		res.DeliveredWakes++
		lastDelivery = curSample
		ph.RequestWake()
	}))
	if err != nil {
		return nil, err
	}
	loaded := false
	for attempt := 0; attempt < maxPushAttempts; attempt++ {
		res.PushAttempts++
		if err := bed.Pump(); err != nil {
			return nil, err
		}
		_, ready, serr := bed.Manager.Status(id)
		if ready && serr == nil {
			loaded = true
			break
		}
		if ready && serr != nil && !errors.Is(serr, link.ErrLinkDown) {
			return nil, serr
		}
		if err := bed.Manager.Repush(id); err != nil {
			return nil, err
		}
	}
	if !loaded {
		return nil, fmt.Errorf("sim: condition never loaded after %d push attempts", maxPushAttempts)
	}

	// Install the injector only after initial provisioning: the sweep
	// measures steady-state resilience, and crash-during-push is covered
	// by the scheduled-injector chaos tests.
	inj, err := resilience.NewCrashInjector(cfg.Crash)
	if err != nil {
		return nil, err
	}
	bed.Hub.SetCrash(inj)
	sup := bed.Manager.Supervisor()

	channels := make([][]float64, len(app.Channels))
	for i, ch := range app.Channels {
		samples, ok := tr.Channels[ch]
		if !ok {
			return nil, fmt.Errorf("sim: trace %q lacks channel %s required by %s", tr.Name, ch, app.Name)
		}
		channels[i] = samples
	}

	fbMW := fallbackAvgMW(cfg.Fallback, sleepSec, profile)
	n := tr.Len()
	dt := 1 / tr.RateHz
	hold := int(swIdleHoldSec * tr.RateHz)

	// The oracle runs outside the failing stack, so its whole-trace fired
	// bitmap can be precomputed on the interpreter's block fast path; the
	// main loop then attributes each fired sample to its timeline window.
	// The live hub still gets fed per sample — its state interleaves with
	// crash injection and heartbeat servicing.
	oracleFired := make([]bool, n)
	for base := 0; base < n; base += simBlock {
		end := base + simBlock
		if end > n {
			end = n
		}
		for i, ch := range app.Channels {
			e := end
			if e > len(channels[i]) {
				e = len(channels[i])
			}
			if e <= base {
				continue
			}
			for _, w := range oracle.PushBlock(ch, channels[i][base:e]) {
				oracleFired[base+w.Off] = true
			}
		}
	}

	// Outage span tracing: one span per contiguous non-Up stretch.
	spanState := resilience.Up
	spanStart := 0.0
	emitSpan := func(endSec float64) {
		if spanState != resilience.Up && phoneStream != nil {
			phoneStream.Span("supervisor."+spanState.String(), "supervisor", spanStart, endSec-spanStart)
		}
	}

	for s := 0; s < n; s++ {
		curSample = s
		nowSec := float64(s) * dt

		// One service pass per side per sample: the supervisor's tick IS
		// the sample clock.
		if err := bed.Hub.Service(); err != nil {
			return nil, err
		}
		if err := bed.Manager.Service(); err != nil {
			return nil, err
		}

		state := sup.State()
		if state != spanState {
			emitSpan(nowSec)
			spanState, spanStart = state, nowSec
		}
		fallbackNow := state == resilience.Down || state == resilience.Recovering

		// Feed the live hub (it drops samples internally while down); the
		// oracle's precomputed bitmap attributes this sample's wakes to
		// their timeline window.
		for i, ch := range app.Channels {
			if s >= len(channels[i]) {
				continue
			}
			if err := bed.Hub.Feed(ch, channels[i][s]); err != nil {
				return nil, err
			}
		}
		if oracleFired[s] {
			res.OracleWakes++
			switch {
			case fallbackNow:
				res.FallbackWakes++
			case inj.Down():
				res.DetectionWindowWakes++
			case bed.Hub.Loaded() == 0:
				// The hub is back up with empty state and the supervisor
				// has not noticed yet. Supervised, the exposure is
				// bounded — the next heartbeat's epoch reveals the
				// reboot — so it counts as detection latency.
				// Unsupervised, nothing will ever notice: the wake is
				// structurally lost.
				if cfg.Supervisor != nil {
					res.DetectionWindowWakes++
				} else {
					res.StructurallyLostWakes++
				}
			default:
				res.HubWindowWakes++
			}
		}

		if !inj.Down() {
			res.HubUpSec += dt
		}
		if fallbackNow {
			// The main processor runs the fallback schedule instead of
			// its normal machine: bill the window separately and leave
			// the machine frozen so nothing is double-counted.
			res.FallbackSec += dt
			res.FallbackEnergyMJ += fbMW * dt
		} else {
			if ph.UsableAwake() && lastDelivery >= 0 && s-lastDelivery > hold {
				ph.RequestSleep()
			}
			ph.Advance(dt)
		}
		clk.SetSec(float64(s+1) * dt)
	}
	emitSpan(float64(n) * dt)
	if err := bed.Pump(); err != nil {
		return nil, err
	}

	res.HubWakes = bed.Hub.WakesSent()
	res.Crash = inj.Stats()
	res.Supervisor = sup.Stats()
	res.Reprovision = bed.Manager.ReprovisionStats()
	if tr.RateHz > 0 {
		res.DetectionLatencySec = res.Supervisor.MeanDetectionTicks() / tr.RateHz
	}

	res.Stats = bed.LinkStats()
	res.LinkEnergyMJ = res.Stats.BusySeconds * link.UARTActiveMW
	res.PhoneEnergyMJ = ph.EnergyMJ()
	dev, placed := bed.Hub.Device()
	if placed {
		res.HubEnergyMJ = dev.ActivePowerMW * res.HubUpSec
	}
	res.TotalMJ = res.PhoneEnergyMJ + res.FallbackEnergyMJ + res.HubEnergyMJ + res.LinkEnergyMJ
	if dur := tr.Duration().Seconds(); dur > 0 {
		res.TotalAvgMW = res.TotalMJ / dur
	}

	if cfg.Telemetry.Enabled() {
		led := cfg.Telemetry.LedgerSink()
		depositPhoneEnergy(led, ph)
		led.AddEnergyMJ(telemetry.PhoneFallback, res.FallbackEnergyMJ)
		if placed {
			depositHubEnergy(led, dev, res.HubUpSec, bed.Profile())
		}
		overhead := res.Stats.PhoneARQ.OverheadBytes + res.Stats.HubARQ.OverheadBytes
		retransMJ := float64(overhead*10) / lossyLinkBaud * link.UARTActiveMW
		led.AddEnergyMJ(telemetry.LinkRetransmit, retransMJ)
		led.AddEnergyMJ(telemetry.LinkWire, res.LinkEnergyMJ-retransMJ)
		_, hubStream, _ := bed.Streams()
		if placed {
			emitStageSpans(hubStream, bed.Profile(), dev)
		}
	}
	return res, nil
}
