package sim

import (
	"math"
	"testing"

	"sidewinder/internal/apps"
	"sidewinder/internal/power"
	"sidewinder/internal/resilience"
	"sidewinder/internal/telemetry"
)

func crashSupervisor() *resilience.SupervisorConfig {
	return &resilience.SupervisorConfig{
		PingIntervalTicks: 8, TimeoutTicks: 8, MissBudget: 3,
		ProbeBackoffTicks: 16, MaxProbeBackoffTicks: 128,
	}
}

// TestCrashRunBaseline: with the injector disabled the supervised replay
// is just the ordinary stack — every oracle wake lands in the hub window,
// nothing falls back, nothing is lost, and every hub wake is delivered.
func TestCrashRunBaseline(t *testing.T) {
	tr := robotTrace(t, 0.5)
	res, err := CrashRun(tr, apps.Steps(), CrashRunConfig{Supervisor: crashSupervisor()})
	if err != nil {
		t.Fatal(err)
	}
	if res.OracleWakes == 0 {
		t.Fatal("trace produced no wakes; test is vacuous")
	}
	if res.HubWindowWakes != res.OracleWakes {
		t.Errorf("hub window holds %d of %d oracle wakes", res.HubWindowWakes, res.OracleWakes)
	}
	if res.FallbackWakes != 0 || res.DetectionWindowWakes != 0 || res.StructurallyLostWakes != 0 {
		t.Errorf("immortal hub produced outage wakes: fallback=%d detection=%d lost=%d",
			res.FallbackWakes, res.DetectionWindowWakes, res.StructurallyLostWakes)
	}
	if res.Crash.Crashes != 0 {
		t.Errorf("disabled injector crashed %d times", res.Crash.Crashes)
	}
	if res.HubWakes == 0 || res.DeliveredWakes != res.HubWakes {
		t.Errorf("delivered %d of %d hub wakes on a clean wire", res.DeliveredWakes, res.HubWakes)
	}
	if res.FallbackEnergyMJ != 0 || res.FallbackSec != 0 {
		t.Errorf("fallback billed without outages: %.3f mJ over %.1f s",
			res.FallbackEnergyMJ, res.FallbackSec)
	}
}

// TestCrashRunWindowPartitionProperty is the conservation law of the wake
// accounting: for any seed, the four timeline windows partition the
// oracle's wakes exactly, a supervised run has zero structural loss, and
// the energy ledger balances against the run total to 1e-9.
func TestCrashRunWindowPartitionProperty(t *testing.T) {
	tr := robotTrace(t, 0.5)
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		for _, mode := range []FallbackMode{FallbackAlwaysAwake, FallbackDutyCycle} {
			led := telemetry.NewLedger()
			res, err := CrashRun(tr, apps.Steps(), CrashRunConfig{
				Crash: resilience.CrashProfile{
					Seed: seed, MTBFTicks: 1500, MeanDownTicks: 150, MaxDownTicks: 600,
				},
				Supervisor: crashSupervisor(),
				Fallback:   mode,
				Telemetry:  telemetry.Set{Ledger: led},
			})
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, mode, err)
			}
			if res.Crash.Crashes == 0 {
				t.Fatalf("seed %d: no crashes at MTBF 1500 over %d samples", seed, tr.Len())
			}
			sum := res.HubWindowWakes + res.FallbackWakes +
				res.DetectionWindowWakes + res.StructurallyLostWakes
			if sum != res.OracleWakes {
				t.Errorf("seed %d %s: windows sum to %d, oracle fired %d "+
					"(hub=%d fallback=%d detection=%d lost=%d)",
					seed, mode, sum, res.OracleWakes, res.HubWindowWakes,
					res.FallbackWakes, res.DetectionWindowWakes, res.StructurallyLostWakes)
			}
			if res.StructurallyLostWakes != 0 {
				t.Errorf("seed %d %s: supervised run structurally lost %d wakes",
					seed, mode, res.StructurallyLostWakes)
			}
			if res.Supervisor.Detections+res.Supervisor.EpochChanges == 0 {
				t.Errorf("seed %d: crashes happened but nothing was detected: %+v",
					seed, res.Supervisor)
			}

			// Ledger conservation: components sum to the run total.
			if diff := math.Abs(led.TotalMJ() - res.TotalMJ); diff > 1e-9*math.Max(1, res.TotalMJ) {
				t.Errorf("seed %d %s: ledger %.12g mJ != run total %.12g mJ",
					seed, mode, led.TotalMJ(), res.TotalMJ)
			}
			if res.FallbackSec > 0 && led.EnergyMJ(telemetry.PhoneFallback) <= 0 {
				t.Errorf("seed %d %s: %0.f s of fallback but no phone.fallback component",
					seed, mode, res.FallbackSec)
			}
		}
	}
}

// TestCrashRunFallbackModesPrice: duty-cycle fallback must be cheaper per
// second than always-awake fallback, and both must price above the asleep
// draw.
func TestCrashRunFallbackModesPrice(t *testing.T) {
	p := power.Nexus4()
	aa := fallbackAvgMW(FallbackAlwaysAwake, 10, p)
	dc := fallbackAvgMW(FallbackDutyCycle, 10, p)
	if dc >= aa {
		t.Errorf("duty-cycle fallback %.1f mW >= always-awake %.1f mW", dc, aa)
	}
	if dc <= p.AsleepMW {
		t.Errorf("duty-cycle fallback %.1f mW <= asleep draw %.1f mW", dc, p.AsleepMW)
	}
}

// TestCrashRunUnsupervisedLoss documents the failure the supervisor
// prevents: with crashes but no supervision, a state-losing reset empties
// the hub forever and wakes are structurally lost.
func TestCrashRunUnsupervisedLoss(t *testing.T) {
	tr := robotTrace(t, 0.5)
	res, err := CrashRun(tr, apps.Steps(), CrashRunConfig{
		Crash: resilience.CrashProfile{
			Seed: 3, MTBFTicks: 1500, MeanDownTicks: 100, MaxDownTicks: 400,
			ResetWeight: 1, // only state-losing crashes
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Crash.Crashes == 0 {
		t.Fatal("no crashes; test is vacuous")
	}
	if res.FallbackWakes != 0 {
		t.Errorf("unsupervised run claims %d fallback wakes", res.FallbackWakes)
	}
	if res.StructurallyLostWakes == 0 {
		t.Error("unsupervised reset lost nothing — the supervisor would be pointless")
	}
	sum := res.HubWindowWakes + res.FallbackWakes +
		res.DetectionWindowWakes + res.StructurallyLostWakes
	if sum != res.OracleWakes {
		t.Errorf("windows sum to %d, oracle fired %d", sum, res.OracleWakes)
	}
}
