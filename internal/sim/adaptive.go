package sim

import (
	"fmt"

	"sidewinder/internal/adapt"
	"sidewinder/internal/apps"
	"sidewinder/internal/core"
	"sidewinder/internal/hub"
	"sidewinder/internal/interp"
	"sidewinder/internal/ir"
	"sidewinder/internal/power"
	"sidewinder/internal/sched"
	"sidewinder/internal/sensor"
	"sidewinder/internal/telemetry"
)

// AdaptStats summarizes what the policy engine did over one run and what
// it was worth. StaticMJ is the counterfactual hub energy had the pushed
// configuration run unchanged, under the same load-proportional power
// model, so AdaptedMJ + SavingsMJ == StaticMJ exactly (the conservation
// invariant the property tests pin at 1e-9).
type AdaptStats struct {
	adapt.Stats
	// FinalKnobs is the configuration resident when the trace ended.
	FinalKnobs adapt.Knobs
	// Adoptions counts hub program rebuilds actually performed (a subset
	// of Stats.Changes: proposals the re-admission check vetoed, and knob
	// changes arriving faster than block boundaries, coalesce).
	Adoptions int
	// StaticMJ / AdaptedMJ / SavingsMJ decompose hub energy.
	StaticMJ, AdaptedMJ, SavingsMJ float64
	// MissedRate is the observed missed-wake fraction.
	MissedRate float64
}

// AdaptiveSidewinder is Sidewinder with the feedback loop closed: the
// application layer's per-wake verdicts (true wake / false wake) and
// missed-event reports feed the adapt.Engine, whose bounded
// re-parameterizations — threshold strictness, Q15 demotion, decimation
// with window stretch — are re-admitted against the hub's cycle/RAM
// budget and swapped in at block boundaries. Hub energy is billed
// load-proportionally (hub.Device.LoadPowerMW), so shedding work shows
// up as measured savings; the static counterfactual under the same model
// is tracked alongside and the difference deposited to the ledger's
// adapt.savings component.
type AdaptiveSidewinder struct {
	// Catalog defaults to core.DefaultCatalog().
	Catalog *core.Catalog
	// Devices defaults to hub.Devices().
	Devices []hub.Device
	// Config bounds the policy; the zero value takes adapt.DefaultConfig.
	Config adapt.Config
	// Frozen disables adaptation: the engine observes nothing and the
	// pushed configuration runs unchanged. This is the static control arm
	// of the experiment — identical power model, identical wake semantics,
	// zero savings by construction.
	Frozen bool

	// Telemetry and TraceLabel behave exactly as on Sidewinder.
	Telemetry  telemetry.Set
	TraceLabel string
}

// Name implements Strategy.
func (s AdaptiveSidewinder) Name() string {
	if s.Frozen {
		return "sidewinder-static"
	}
	return "sidewinder-adaptive"
}

// truthTracker scores wakes against ground truth online, in trace order:
// each phone wake-up is classified true/false by window overlap, and a
// truth event whose tolerance window expires with neither a wake nor an
// open awake interval is a miss. All state advances monotonically with
// the sample index, so the verdict sequence is a pure function of the
// trace — the determinism the worker-invariance tests rely on.
type truthTracker struct {
	truth []sensor.Event
	woken []bool
	order []int // event indices sorted by deadline (End+tol)
	tol   int
	next  int // first order entry whose deadline has not expired
}

func newTruthTracker(truth []sensor.Event, tol int) *truthTracker {
	t := &truthTracker{
		truth: truth,
		woken: make([]bool, len(truth)),
		order: make([]int, len(truth)),
		tol:   tol,
	}
	for i := range t.order {
		t.order[i] = i
	}
	// Insertion sort by End: truth events arrive sorted by Start and
	// rarely overlap, so this is near-linear and avoids importing sort.
	for i := 1; i < len(t.order); i++ {
		for j := i; j > 0 && truth[t.order[j]].End < truth[t.order[j-1]].End; j-- {
			t.order[j], t.order[j-1] = t.order[j-1], t.order[j]
		}
	}
	return t
}

// markFired records that the hub condition fired at sample i and reports
// whether the firing overlapped any truth event's tolerance window.
func (t *truthTracker) markFired(i int) bool {
	hit := false
	for j, e := range t.truth {
		if i >= e.Start-t.tol && i <= e.End+t.tol {
			t.woken[j] = true
			hit = true
		}
	}
	return hit
}

// expire returns how many truth events were missed by sample i: their
// tolerance window closed with no firing, while the phone was asleep
// (an open awake interval means the application had the data anyway).
func (t *truthTracker) expire(i int, phoneOpen bool) int {
	missed := 0
	for t.next < len(t.order) {
		ei := t.order[t.next]
		if t.truth[ei].End+t.tol >= i {
			break
		}
		if !t.woken[ei] && !phoneOpen {
			missed++
		}
		t.next++
	}
	return missed
}

// adaptiveProgram is one compiled, admitted hub configuration.
type adaptiveProgram struct {
	machine  *interp.Machine
	channels [][]float64
	chNames  []core.SensorChannel
	powerMW  float64
}

// Run implements Strategy.
func (s AdaptiveSidewinder) Run(tr *sensor.Trace, app *apps.App) (*Result, error) {
	cat := s.Catalog
	if cat == nil {
		cat = core.DefaultCatalog()
	}
	devices := s.Devices
	if devices == nil {
		devices = hub.Devices()
	}
	cfg := s.Config
	if cfg == (adapt.Config{}) {
		cfg = adapt.DefaultConfig()
	}
	base, err := app.Wake.Validate(cat)
	if err != nil {
		return nil, fmt.Errorf("sim: validating %s wake condition: %w", app.Name, err)
	}
	dev, err := hub.SelectDevice(devices, base)
	if err != nil {
		return nil, fmt.Errorf("sim: placing %s wake condition: %w", app.Name, err)
	}
	budget := sched.BudgetFor(dev)
	// The static counterfactual: the pushed program at the developer's
	// precision, billed load-proportionally. Adaptation is only allowed
	// to move demand DOWN from here, so savings are non-negative and
	// AdaptedMJ + SavingsMJ == StaticMJ is exact.
	baseF, baseI, _ := adapt.Demand(base, interp.Float64)
	baseCycles := budget.Cycles(baseF, baseI)
	staticMW := dev.LoadPowerMW(baseF, baseI)

	engine := adapt.NewEngine(cfg)

	var profile *telemetry.InterpProfile
	if s.Telemetry.Enabled() {
		profile = telemetry.NewInterpProfile()
	}

	build := func(k adapt.Knobs) (*adaptiveProgram, error) {
		plan, err := adapt.Reparameterize(cat, base, k)
		if err != nil {
			return nil, err
		}
		f, i, mem := adapt.Demand(plan, k.Precision)
		if !budget.Fits(f, i, mem) || budget.Cycles(f, i) > baseCycles {
			return nil, fmt.Errorf("sim: knobs %+v exceed the admitted demand", k)
		}
		exec, _, err := ir.CompilePlan(cat, ir.CompileOptions{}, plan)
		if err != nil {
			return nil, err
		}
		m, err := interp.NewPrecision(exec, k.Precision)
		if err != nil {
			return nil, err
		}
		p := &adaptiveProgram{machine: m, powerMW: dev.LoadPowerMW(f, i)}
		if profile != nil {
			m.SetProfile(profile)
		}
		for _, ch := range exec.Channels {
			samples, ok := tr.Channels[ch]
			if !ok {
				return nil, fmt.Errorf("sim: trace %q lacks channel %s required by %s", tr.Name, ch, app.Name)
			}
			p.channels = append(p.channels, samples)
			p.chNames = append(p.chNames, ch)
		}
		return p, nil
	}

	cur, err := build(engine.Knobs())
	if err != nil {
		return nil, err
	}
	engine.TakeDirty() // the pushed configuration is not an adaptation

	ph := power.NewPhone(power.Nexus4())
	c := &clock{ph: ph, rate: tr.RateHz, n: tr.Len()}
	dt := 1 / tr.RateHz
	preBuffer := int(app.PreBufferSec * tr.RateHz)
	hold := int(swIdleHoldSec * tr.RateHz)
	tol := int(app.MatchTolSec * tr.RateHz)
	tracker := newTruthTracker(tr.EventsLabeled(app.Label), tol)

	var phoneStream, hubStream *telemetry.Stream
	if s.Telemetry.Enabled() {
		c.tclk = &telemetry.Clock{}
		phoneStream = s.Telemetry.Tracer.Stream(s.TraceLabel+"phone", c.tclk)
		hubStream = s.Telemetry.Tracer.Stream(s.TraceLabel+"hub", c.tclk)
		tracePhoneTransitions(ph, phoneStream)
	}

	// pending holds a re-admitted program awaiting the next block boundary;
	// swapping only there keeps each block's wake offsets internally
	// consistent and models the hub finishing its buffer before rebuilding.
	var pending *adaptiveProgram
	adoptions := 0

	// observe feeds one verdict and, if the proposal moved, re-admits it.
	// A vetoed rung re-proposes its fallback immediately (Veto marks the
	// engine dirty), so the loop is bounded by the ladder length.
	observe := func(sig adapt.Signal) {
		if s.Frozen {
			return
		}
		engine.Observe(sig)
		for engine.TakeDirty() {
			p, err := build(engine.Knobs())
			if err != nil {
				engine.Veto()
				continue
			}
			pending = p
			adoptions++
			hubStream.Instant2("adapt.adopt", "hub",
				"rung", float64(engine.Stats().Rung), "mW", p.powerMW)
			return
		}
		pending = nil // proposal settled back to the resident program
	}

	var intervals []Interval
	openStart := -1
	lastFire := -1
	hubMJ, staticMJ := 0.0, 0.0
	frozenTally := adapt.Stats{}
	// lastVerdict rate-limits awake-phase re-confirmations: a wake-up
	// transition always yields a verdict, and while the phone stays awake
	// through a long event the application re-confirms at most once per
	// hold window — without this, continuous conditions (music playing)
	// would produce one verdict per run and starve the policy.
	lastVerdict := -(hold + 1)

	fired := make([]bool, simBlock)
	for blockStart := 0; blockStart < tr.Len(); blockStart += simBlock {
		if pending != nil {
			cur, pending = pending, nil
		}
		end := blockStart + simBlock
		if end > tr.Len() {
			end = tr.Len()
		}
		f := fired[:end-blockStart]
		for k := range f {
			f[k] = false
		}
		for ci, samples := range cur.channels {
			for _, w := range cur.machine.PushBlock(cur.chNames[ci], samples[blockStart:end]) {
				f[w.Off] = true
			}
		}
		hubMJ += cur.powerMW * float64(end-blockStart) * dt
		staticMJ += staticMW * float64(end-blockStart) * dt
		for k := range f {
			i := blockStart + k
			if f[k] {
				lastFire = i
				hit := tracker.markFired(i)
				hubStream.Instant1("wake.sent", "hub", "sample", float64(i))
				verdict := false
				if ph.State() == power.Asleep || ph.State() == power.FallingAsleep {
					ph.RequestWake()
					openStart = i - preBuffer
					if openStart < 0 {
						openStart = 0
					}
					verdict = true
				} else if i-lastVerdict > hold {
					verdict = true
				}
				if verdict {
					lastVerdict = i
					if hit {
						frozenTally.TrueWakes++
						observe(adapt.TrueWake)
					} else {
						frozenTally.FalseWakes++
						observe(adapt.FalseWake)
					}
				}
			}
			for n := tracker.expire(i, openStart >= 0); n > 0; n-- {
				frozenTally.MissedWakes++
				observe(adapt.MissedWake)
			}
			if ph.State() == power.Awake && lastFire >= 0 && i-lastFire > hold {
				ph.RequestSleep()
				intervals = append(intervals, Interval{openStart, i})
				openStart = -1
			}
			c.advance(dt)
		}
	}
	if openStart >= 0 {
		intervals = append(intervals, Interval{openStart, tr.Len()})
	}
	// Score (but no longer act on) events whose window ran off the trace.
	frozenTally.MissedWakes += tracker.expire(tr.Len()+tol+1, openStart >= 0)

	totalSec := ph.TotalSeconds()
	stats := engine.Stats()
	if s.Frozen {
		stats = frozenTally
	}
	astats := &AdaptStats{
		Stats:      stats,
		FinalKnobs: engine.Knobs(),
		Adoptions:  adoptions,
		StaticMJ:   staticMJ,
		AdaptedMJ:  hubMJ,
		SavingsMJ:  staticMJ - hubMJ,
		MissedRate: engine.MissedRate(),
	}
	if s.Frozen {
		// The frozen arm never billed below staticMW, so savings are zero
		// up to the same accumulation the adaptive arm performs.
		astats.MissedRate = missedRateOf(frozenTally)
	}

	if s.Telemetry.Enabled() {
		led := s.Telemetry.LedgerSink()
		depositPhoneEnergy(led, ph)
		led.AddEnergyMJ(telemetry.HubDevice, hubMJ)
		led.AddEnergyMJ(telemetry.AdaptSavings, staticMJ-hubMJ)
		profile.DepositCycles(led, dev.CyclesPerFloatOp, dev.CyclesPerIntOp)
		emitStageSpans(hubStream, profile, dev)
	}

	hubMW := 0.0
	if totalSec > 0 {
		hubMW = hubMJ / totalSec
	}
	res := finish(s.Name(), tr, app, ph, hubMW, intervals, nil)
	res.Device = dev.Name
	res.HubUtilization = dev.Utilization(base)
	res.Adapt = astats
	return res, nil
}

// missedRateOf computes the missed fraction from raw tallies.
func missedRateOf(s adapt.Stats) float64 {
	total := s.MissedWakes + s.TrueWakes
	if total == 0 {
		return 0
	}
	return float64(s.MissedWakes) / float64(total)
}
