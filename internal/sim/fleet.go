package sim

import (
	"fmt"
	"math/rand"
	"sort"

	"sidewinder/internal/apps"
	"sidewinder/internal/core"
	"sidewinder/internal/hub"
	"sidewinder/internal/interp"
	"sidewinder/internal/ir"
	"sidewinder/internal/parallel"
	"sidewinder/internal/power"
	"sidewinder/internal/sched"
	"sidewinder/internal/sensor"
	"sidewinder/internal/telemetry"
)

// Fleet-scale capacity replay: a seeded population of N phones, each
// running M concurrently registered applications against one hub. Every
// phone draws its app mix, priorities and sensor trace from its own
// deterministic RNG, runs the admission controller to place the mix on
// the cheapest hub device that admits everything (falling back to the
// most capable device plus phone-side degradation when none does), then
// replays the admitted set on a shared merged interpreter while the
// degraded remainder is billed as duty-cycled fallback sensing.
//
// The sweep is an analytic population model on top of the interpreter —
// no wire replay — so a cell's cost is dominated by the trace length, and
// cells fan out over the bounded worker pool. Cell RNGs are derived from
// (Seed, cell index) alone and ledger deposits happen after the fan-out
// in cell order, so results are byte-identical at any worker count.

// FleetRunConfig parameterizes one fleet sweep.
type FleetRunConfig struct {
	// Devices is the population size N (required, > 0).
	Devices int
	// AppsPerDevice is the app mix size M per phone (required, > 0).
	// Draws are with repetition; duplicate conditions share their whole
	// chain on the hub and cost nothing extra.
	AppsPerDevice int
	// Seed derives every cell's RNG. Same seed, same population.
	Seed int64
	// Workers bounds the cell fan-out (<= 0: one per CPU).
	Workers int

	// Accel and Audio are the candidate single-modality traces a cell may
	// draw. At least one list must be non-empty; a cell first draws its
	// modality (from the non-empty lists), then a trace within it.
	Accel []*sensor.Trace
	Audio []*sensor.Trace

	// FallbackSleepSec is the duty-cycle sleep interval billed to
	// degraded conditions (default 10 s).
	FallbackSleepSec float64

	// Precision selects the hub interpreter's numeric substrate for every
	// cell (default float64).
	Precision interp.Precision

	// DisableCSE turns off the DAG compile pass's cross-app sharing,
	// folding and fusion: the scheduler bills every condition standalone
	// and the hub executes one instance per plan node. The ablation knob
	// for quantifying what common-subgraph elimination buys the fleet.
	DisableCSE bool

	// Telemetry, when enabled, deposits every cell's energy split into
	// the ledger (phone states, phone.fallback for degraded sensing, hub
	// device draw) in cell order.
	Telemetry telemetry.Set
}

// FleetCell reports one phone of the population.
type FleetCell struct {
	Device     string   // hub device the mix was placed on
	Modality   string   // "accel" or "audio"
	Trace      string   // trace the cell replayed
	Apps       []string // drawn app names, in draw order
	Priorities []int    // matching priorities (0 = lowest)

	Admitted    int // conditions resident on the hub
	Degraded    int // conditions demoted to phone fallback
	SharedNodes int // pipeline nodes saved by cross-app sharing
	CycleFrac   float64
	RAMFrac     float64
	Wakes       int

	DurationSec      float64
	PhoneEnergyMJ    float64
	FallbackEnergyMJ float64
	HubEnergyMJ      float64
	TotalMJ          float64
	AvgMW            float64

	// PhoneStateMJ splits PhoneEnergyMJ across the phone's four power
	// states, indexed by power.State (Asleep, WakingUp, Awake,
	// FallingAsleep). The four entries sum to PhoneEnergyMJ exactly, so a
	// streaming replay (the fleet daemon's load generator) can re-deposit
	// the precise per-component values batch FleetRun deposits.
	PhoneStateMJ [4]float64
}

// FleetResult aggregates the population.
type FleetResult struct {
	Cells []FleetCell

	Conditions int // N * M
	Admitted   int
	Degraded   int

	MeanMW float64
	P50MW  float64
	P90MW  float64
}

// AdmissionRate is the fraction of registered conditions resident on hubs.
func (r *FleetResult) AdmissionRate() float64 {
	if r.Conditions == 0 {
		return 0
	}
	return float64(r.Admitted) / float64(r.Conditions)
}

// DegradationRate is 1 - AdmissionRate.
func (r *FleetResult) DegradationRate() float64 {
	if r.Conditions == 0 {
		return 0
	}
	return float64(r.Degraded) / float64(r.Conditions)
}

// fleetCellSeed spreads cell indices across the seed space (64-bit golden
// ratio, truncated to keep the constant an int64).
const fleetCellSeed = 0x2545F4914F6CDD1D

// DepositEnergy attributes the cell's recorded energy split to the
// ledger: the four phone states, phone-side fallback, then the hub
// device, in that fixed order. FleetRun calls it per cell in cell order;
// the fleet daemon's identity test replays the same deposits over the
// wire and compares per-device totals bit for bit.
func (c *FleetCell) DepositEnergy(led *telemetry.Ledger) {
	led.AddEnergyMJ(telemetry.PhoneAsleep, c.PhoneStateMJ[power.Asleep])
	led.AddEnergyMJ(telemetry.PhoneWaking, c.PhoneStateMJ[power.WakingUp])
	led.AddEnergyMJ(telemetry.PhoneAwake, c.PhoneStateMJ[power.Awake])
	led.AddEnergyMJ(telemetry.PhoneFallingAsleep, c.PhoneStateMJ[power.FallingAsleep])
	led.AddEnergyMJ(telemetry.PhoneFallback, c.FallbackEnergyMJ)
	led.AddEnergyMJ(telemetry.HubDevice, c.HubEnergyMJ)
}

// FleetRun sweeps the population and returns per-cell placements and the
// aggregate admission/energy picture.
func FleetRun(cfg FleetRunConfig) (*FleetResult, error) {
	if cfg.Devices <= 0 {
		return nil, fmt.Errorf("sim: fleet needs a positive population size")
	}
	if cfg.AppsPerDevice <= 0 {
		return nil, fmt.Errorf("sim: fleet needs a positive app mix size")
	}
	if len(cfg.Accel) == 0 && len(cfg.Audio) == 0 {
		return nil, fmt.Errorf("sim: fleet needs at least one candidate trace")
	}
	sleepSec := cfg.FallbackSleepSec
	if sleepSec <= 0 {
		sleepSec = 10
	}

	outs, err := parallel.Map(cfg.Workers, cfg.Devices, func(i int) (FleetCell, error) {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*fleetCellSeed))
		cell, err := fleetCell(cfg, rng, sleepSec)
		return cell, err
	})
	if err != nil {
		return nil, err
	}

	res := &FleetResult{Cells: make([]FleetCell, 0, len(outs))}
	led := cfg.Telemetry.LedgerSink()
	var totalMW []float64
	for _, cell := range outs {
		res.Cells = append(res.Cells, cell)
		res.Conditions += cell.Admitted + cell.Degraded
		res.Admitted += cell.Admitted
		res.Degraded += cell.Degraded
		totalMW = append(totalMW, cell.AvgMW)
		// Ledger deposits run here, in cell order, never inside the
		// parallel fan: float accumulation order is part of the
		// determinism contract. The deposits come from the cell's recorded
		// split, which is exactly what a streaming replay of the cell must
		// reproduce on the fleet daemon's ledger.
		cell.DepositEnergy(led)
	}
	res.MeanMW = mean(totalMW)
	res.P50MW = quantile(totalMW, 0.50)
	res.P90MW = quantile(totalMW, 0.90)
	return res, nil
}

// fleetCell draws and replays one phone of the population.
func fleetCell(cfg FleetRunConfig, rng *rand.Rand, sleepSec float64) (FleetCell, error) {
	var cell FleetCell

	// Draw the modality first: traces are single-modality, so the app mix
	// must agree with the trace before either is chosen.
	pool, traces := apps.AccelApps(), cfg.Accel
	cell.Modality = "accel"
	if len(cfg.Accel) == 0 || (len(cfg.Audio) > 0 && rng.Intn(2) == 1) {
		pool, traces = apps.AudioApps(), cfg.Audio
		cell.Modality = "audio"
	}
	tr := traces[rng.Intn(len(traces))]
	cell.Trace = tr.Name

	cat := core.DefaultCatalog()
	plans := make([]*core.Plan, 0, cfg.AppsPerDevice)
	for j := 0; j < cfg.AppsPerDevice; j++ {
		app := pool[rng.Intn(len(pool))]
		plan, err := app.Wake.Validate(cat)
		if err != nil {
			return cell, fmt.Errorf("sim: fleet validating %s: %w", app.Name, err)
		}
		plans = append(plans, plan)
		cell.Apps = append(cell.Apps, app.Name)
		cell.Priorities = append(cell.Priorities, rng.Intn(3))
	}

	// Place the mix on the cheapest device that admits everything; when
	// none does, the most capable device carries what fits and the rest
	// degrades.
	var s *sched.Scheduler
	var dev hub.Device
	for _, cand := range hub.Devices() {
		cs := sched.NewWithOptions(cand, sched.Options{DisableSharing: cfg.DisableCSE})
		for j, plan := range plans {
			if _, err := cs.Add(uint16(j+1), plan, cell.Priorities[j]); err != nil {
				return cell, err
			}
		}
		s, dev = cs, cand
		if len(cs.FallbackSet()) == 0 {
			break
		}
	}
	cell.Device = dev.Name
	cell.Admitted = len(s.HubSet())
	cell.Degraded = len(s.FallbackSet())
	cell.CycleFrac, cell.RAMFrac, cell.SharedNodes = s.Utilization()

	profile := power.Nexus4()
	ph := power.NewPhone(profile)
	dt := 1 / tr.RateHz
	cell.DurationSec = float64(tr.Len()) * dt

	hubPlans := s.HubPlans()
	if len(hubPlans) > 0 {
		// The admitted set executes as one DAG-compiled shared plan:
		// identical subgraphs run once, exactly as the scheduler billed
		// them. With CSE disabled the pass is fully ablated and every
		// plan node gets its own instance.
		copts := ir.CompileOptions{}
		if cfg.DisableCSE {
			copts = ir.NoOpt()
		}
		sp, err := ir.CompilePlans(cat, copts, hubPlans...)
		if err != nil {
			return cell, err
		}
		m, err := interp.NewShared(cfg.Precision, sp)
		if err != nil {
			return cell, err
		}
		// Union of the admitted plans' channels, in first-use order.
		var chNames []core.SensorChannel
		var channels [][]float64
		seen := map[core.SensorChannel]bool{}
		for _, plan := range hubPlans {
			for _, ch := range plan.Channels {
				if seen[ch] {
					continue
				}
				seen[ch] = true
				samples, ok := tr.Channels[ch]
				if !ok {
					return cell, fmt.Errorf("sim: trace %q lacks channel %s", tr.Name, ch)
				}
				chNames = append(chNames, ch)
				channels = append(channels, samples)
			}
		}

		hold := int(swIdleHoldSec * tr.RateHz)
		lastFire := -1
		// Block fast path: push whole chunks through the merged machine,
		// spread wake offsets onto a fired bitmap, and replay the phone
		// state machine per sample — identical to the per-sample loop.
		fired := make([]bool, simBlock)
		for base := 0; base < tr.Len(); base += simBlock {
			end := base + simBlock
			if end > tr.Len() {
				end = tr.Len()
			}
			f := fired[:end-base]
			for k := range f {
				f[k] = false
			}
			for ci := range channels {
				for _, w := range m.PushBlock(chNames[ci], channels[ci][base:end]) {
					f[w.Off] = true
				}
			}
			for k := range f {
				i := base + k
				if f[k] {
					cell.Wakes++
					lastFire = i
					if ph.State() == power.Asleep || ph.State() == power.FallingAsleep {
						ph.RequestWake()
					}
				}
				if ph.State() == power.Awake && lastFire >= 0 && i-lastFire > hold {
					ph.RequestSleep()
				}
				ph.Advance(dt)
			}
		}
		cell.HubEnergyMJ = dev.ActivePowerMW * cell.DurationSec
	} else {
		// Nothing on the hub: the phone sleeps through the whole trace
		// (fallback sensing is billed below) and the hub stays unpowered.
		ph.Advance(cell.DurationSec)
	}

	if cell.Degraded > 0 {
		// One duty-cycle schedule covers all degraded conditions on this
		// phone: every wake window examines every degraded condition's
		// buffered data. Billed as the draw ABOVE the asleep baseline the
		// phone machine already accounts, so nothing is double-counted.
		cell.FallbackEnergyMJ = (fallbackAvgMW(FallbackDutyCycle, sleepSec, profile) - profile.AsleepMW) * cell.DurationSec
	}

	cell.PhoneStateMJ = [4]float64{
		power.Asleep:        ph.StateEnergyMJ(power.Asleep),
		power.WakingUp:      ph.StateEnergyMJ(power.WakingUp),
		power.Awake:         ph.StateEnergyMJ(power.Awake),
		power.FallingAsleep: ph.StateEnergyMJ(power.FallingAsleep),
	}
	cell.PhoneEnergyMJ = ph.EnergyMJ()
	cell.TotalMJ = cell.PhoneEnergyMJ + cell.FallbackEnergyMJ + cell.HubEnergyMJ
	if cell.DurationSec > 0 {
		cell.AvgMW = cell.TotalMJ / cell.DurationSec
	}
	return cell, nil
}

// mean of a sample (0 for empty).
func mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var sum float64
	for _, x := range v {
		sum += x
	}
	return sum / float64(len(v))
}

// quantile returns the nearest-rank q-quantile of a sample (0 for empty).
func quantile(v []float64, q float64) float64 {
	if len(v) == 0 {
		return 0
	}
	sorted := append([]float64(nil), v...)
	sort.Float64s(sorted)
	rank := int(q*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}
