package sim

import (
	"errors"
	"fmt"

	"sidewinder/internal/apps"
	"sidewinder/internal/link"
	"sidewinder/internal/manager"
	"sidewinder/internal/power"
	"sidewinder/internal/sensor"
	"sidewinder/internal/telemetry"
)

// LossyLinkConfig parameterizes a replay of one application's wake-up
// condition through the full manager/link/hub stack with fault injection
// on the wire.
type LossyLinkConfig struct {
	// Fault is the injected fault regime (both directions; the testbed
	// derives a distinct stream for each).
	Fault link.FaultConfig
	// ARQ, when non-nil, protects the wire with the stop-and-wait
	// reliability layer. nil replays raw frames, measuring what the
	// faults actually cost an unprotected link.
	ARQ *link.ARQConfig
	// BufSamples is the hub's per-channel raw-data ring (default 32: a
	// small ring keeps data frames short, which is also what a real
	// memory-starved hub would do).
	BufSamples int

	// Telemetry, when enabled, instruments the whole assembly: link and
	// ARQ counters, frame/wake trace events, phone state transitions, and
	// an energy ledger attributing phone, hub and wire (first-transmission
	// vs retransmission) energy. The zero Set changes nothing.
	Telemetry telemetry.Set
	// TraceLabel prefixes the run's trace stream names.
	TraceLabel string
}

// LossyLinkResult reports delivery and energy outcomes of one replay.
type LossyLinkResult struct {
	HubWakes        int     // wake frames the hub handed to the link
	DeliveredWakes  int     // wake events that reached the listener
	DuplicateWakes  int     // events delivered more than once (must be 0)
	DeliveredRecall float64 // DeliveredWakes / HubWakes (1 when no wakes)
	PushAttempts    int     // config pushes needed to load the condition
	Stats           manager.LinkStats
	LinkBusySec     float64 // wire occupancy including retransmissions
	LinkEnergyMJ    float64 // LinkBusySec × link.UARTActiveMW
	LinkAvgMW       float64 // link energy averaged over the trace duration

	// Phone-side accounting: delivered wake events drive a Nexus 4 power
	// state machine (wake on delivery, sleep after an idle hold), so the
	// replay also yields the phone energy the surviving wake-ups cost.
	PhoneEnergyMJ float64
	PhoneWakeUps  int
	// HubEnergyMJ is the hub device's constant draw over the trace.
	HubEnergyMJ float64
}

// lossyLinkBaud is the testbed's default serial rate, used to price ARQ
// overhead bytes when splitting wire energy into first-transmission and
// retransmission components.
const lossyLinkBaud = 115200

// maxPushAttempts bounds config-push retries over a raw lossy wire; the
// ARQ path virtually always succeeds on the first attempt.
const maxPushAttempts = 25

// LossyLinkRun replays an application's wake-up condition over a faulty
// serial link and measures what survives: how many hub-side wake events
// reach the phone, whether any arrive twice, and what the link traffic —
// retransmissions included — costs in energy.
func LossyLinkRun(tr *sensor.Trace, app *apps.App, cfg LossyLinkConfig) (*LossyLinkResult, error) {
	bufSamples := cfg.BufSamples
	if bufSamples <= 0 {
		bufSamples = 32
	}
	fault := cfg.Fault
	clk := &telemetry.Clock{}
	bed, err := manager.NewTestbed(manager.TestbedConfig{
		BufSamples: bufSamples,
		Fault:      &fault,
		ARQ:        cfg.ARQ,
		Telemetry:  cfg.Telemetry,
		Clock:      clk,
		TraceLabel: cfg.TraceLabel,
	})
	if err != nil {
		return nil, err
	}

	// The phone rides along as a passive observer: delivered wake events
	// wake it, an idle hold puts it back to sleep. It never touches the
	// wire, so delivery results are identical with or without it.
	ph := power.NewPhone(power.Nexus4())
	phoneStream, _, _ := bed.Streams()
	tracePhoneTransitions(ph, phoneStream)
	lastDelivery := -1
	curSample := 0

	res := &LossyLinkResult{}
	seen := make(map[int64]int)
	id, err := bed.Manager.Push(app.Wake, manager.ListenerFunc(func(e manager.Event) {
		res.DeliveredWakes++
		seen[e.SampleIndex]++
		if seen[e.SampleIndex] > 1 {
			res.DuplicateWakes++
		}
		lastDelivery = curSample
		ph.RequestWake()
	}))
	if err != nil {
		return nil, err
	}

	// Load the condition, re-pushing as long as the link keeps eating
	// the push or its ack. The ARQ path settles this on the first
	// attempt; a raw wire at high error rates may need several.
	loaded := false
	for attempt := 0; attempt < maxPushAttempts; attempt++ {
		res.PushAttempts++
		if err := bed.Pump(); err != nil {
			return nil, err
		}
		_, ready, serr := bed.Manager.Status(id)
		if ready && serr == nil {
			loaded = true
			break
		}
		if ready && serr != nil && !errors.Is(serr, link.ErrLinkDown) {
			return nil, serr // the hub actually rejected the program
		}
		if err := bed.Manager.Repush(id); err != nil {
			return nil, err
		}
	}
	if !loaded {
		return nil, fmt.Errorf("sim: condition never loaded after %d push attempts", maxPushAttempts)
	}

	// Replay the trace through the hub, all of the condition's channels
	// in lockstep.
	channels := make([][]float64, len(app.Channels))
	for i, ch := range app.Channels {
		channels[i] = tr.Channels[ch]
	}
	n := tr.Len()
	dt := 1 / tr.RateHz
	hold := int(swIdleHoldSec * tr.RateHz)
	for s := 0; s < n; s++ {
		curSample = s
		for i, ch := range app.Channels {
			if s >= len(channels[i]) {
				continue
			}
			if err := bed.Feed(ch, channels[i][s]); err != nil {
				return nil, err
			}
		}
		if ph.UsableAwake() && lastDelivery >= 0 && s-lastDelivery > hold {
			ph.RequestSleep()
		}
		ph.Advance(dt)
		clk.SetSec(float64(s+1) * dt)
	}
	if err := bed.Pump(); err != nil {
		return nil, err
	}

	res.HubWakes = bed.Hub.WakesSent()
	res.Stats = bed.LinkStats()
	res.LinkBusySec = res.Stats.BusySeconds
	res.LinkEnergyMJ = res.LinkBusySec * link.UARTActiveMW
	if dur := tr.Duration().Seconds(); dur > 0 {
		res.LinkAvgMW = res.LinkEnergyMJ / dur
	}
	res.DeliveredRecall = 1
	if res.HubWakes > 0 {
		res.DeliveredRecall = float64(res.DeliveredWakes) / float64(res.HubWakes)
	}

	res.PhoneEnergyMJ = ph.EnergyMJ()
	res.PhoneWakeUps = ph.WakeUps()
	dur := ph.TotalSeconds()
	dev, placed := bed.Hub.Device()
	if placed {
		res.HubEnergyMJ = dev.ActivePowerMW * dur
	}

	if cfg.Telemetry.Enabled() {
		led := cfg.Telemetry.LedgerSink()
		depositPhoneEnergy(led, ph)
		if placed {
			depositHubEnergy(led, dev, dur, bed.Profile())
		}
		// Split wire energy: ARQ overhead bytes (retransmitted frames plus
		// all ack traffic) price the retransmission component; the rest is
		// first-transmission occupancy. The two sum to LinkEnergyMJ.
		overhead := res.Stats.PhoneARQ.OverheadBytes + res.Stats.HubARQ.OverheadBytes
		retransMJ := float64(overhead*10) / lossyLinkBaud * link.UARTActiveMW
		led.AddEnergyMJ(telemetry.LinkRetransmit, retransMJ)
		led.AddEnergyMJ(telemetry.LinkWire, res.LinkEnergyMJ-retransMJ)
		_, hubStream, _ := bed.Streams()
		if placed {
			emitStageSpans(hubStream, bed.Profile(), dev)
		}
	}
	return res, nil
}
