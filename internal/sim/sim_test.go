package sim

import (
	"math"
	"testing"
	"time"

	"sidewinder/internal/apps"
	"sidewinder/internal/sensor"
	"sidewinder/internal/tracegen"
)

func robotTrace(t *testing.T, idle float64) *sensor.Trace {
	t.Helper()
	tr, err := tracegen.Robot(tracegen.RobotConfig{Seed: 7, Duration: 10 * time.Minute, IdleFraction: idle})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestMergeIntervals(t *testing.T) {
	got := mergeIntervals([]Interval{{5, 10}, {0, 3}, {9, 12}, {3, 4}})
	want := []Interval{{0, 4}, {5, 12}}
	if len(got) != len(want) {
		t.Fatalf("mergeIntervals = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("interval %d = %v, want %v", i, got[i], want[i])
		}
	}
	if mergeIntervals(nil) != nil {
		t.Error("empty merge should be nil")
	}
}

func TestMatchMetrics(t *testing.T) {
	truth := []sensor.Event{
		{Label: "e", Start: 100, End: 120},
		{Label: "e", Start: 300, End: 320},
		{Label: "e", Start: 500, End: 520},
	}
	dets := []sensor.Event{
		{Label: "e", Start: 105, End: 110}, // hits #1
		{Label: "e", Start: 290, End: 305}, // hits #2
		{Label: "e", Start: 700, End: 710}, // false positive
	}
	recall, precision, tp, fp := Match(truth, dets, 0)
	if math.Abs(recall-2.0/3) > 1e-12 {
		t.Errorf("recall = %g, want 2/3", recall)
	}
	if math.Abs(precision-2.0/3) > 1e-12 {
		t.Errorf("precision = %g, want 2/3", precision)
	}
	if tp != 2 || fp != 1 {
		t.Errorf("tp/fp = %d/%d", tp, fp)
	}
	// Tolerance rescues a near miss.
	recall, _, _, _ = Match(truth, []sensor.Event{{Label: "e", Start: 525, End: 530}}, 10)
	if math.Abs(recall-1.0/3) > 1e-12 {
		t.Errorf("tolerant recall = %g, want 1/3", recall)
	}
	// Degenerate cases.
	r, p, _, _ := Match(nil, nil, 0)
	if r != 1 || p != 1 {
		t.Errorf("empty match = %g/%g, want 1/1", r, p)
	}
}

func TestAlwaysAwakeBaseline(t *testing.T) {
	tr := robotTrace(t, 0.9)
	res, err := AlwaysAwake{}.Run(tr, apps.Steps())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Power.TotalAvgMW-323) > 1e-9 {
		t.Errorf("always-awake power = %g, want 323 (paper §5.1)", res.Power.TotalAvgMW)
	}
	if res.Power.WakeUps != 0 {
		t.Errorf("always-awake wakeups = %d", res.Power.WakeUps)
	}
	if res.Recall < 0.95 {
		t.Errorf("always-awake recall = %.3f", res.Recall)
	}
}

func TestOraclePowerScalesWithActivity(t *testing.T) {
	var prev float64 = -1
	for _, idle := range []float64{0.9, 0.5, 0.1} {
		tr := robotTrace(t, idle)
		res, err := Oracle{}.Run(tr, apps.Steps())
		if err != nil {
			t.Fatal(err)
		}
		if res.Recall != 1 || res.Precision != 1 {
			t.Errorf("oracle metrics not perfect: %+v", res)
		}
		if res.Power.TotalAvgMW <= prev {
			t.Errorf("oracle power should grow with activity: %.1f after %.1f (idle %.0f%%)",
				res.Power.TotalAvgMW, prev, idle*100)
		}
		prev = res.Power.TotalAvgMW
		if res.Power.TotalAvgMW >= 323 {
			t.Errorf("oracle should beat always-awake, got %.1f", res.Power.TotalAvgMW)
		}
	}
}

func TestOracleBeatsEverythingOnPower(t *testing.T) {
	tr := robotTrace(t, 0.5)
	app := apps.Headbutts()
	oracle, err := Oracle{}.Run(tr, app)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Strategy{
		DutyCycling{SleepSec: 10},
		Batching{SleepSec: 10},
		PredefinedActivity{Kind: SignificantMotion, Threshold: 0.15},
		Sidewinder{},
	} {
		res, err := s.Run(tr, app)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if res.Power.TotalAvgMW < oracle.Power.TotalAvgMW {
			t.Errorf("%s (%.1f mW) beat the oracle (%.1f mW)", s.Name(), res.Power.TotalAvgMW, oracle.Power.TotalAvgMW)
		}
	}
}

func TestDutyCyclingRecallDropsWithSleepInterval(t *testing.T) {
	tr := robotTrace(t, 0.9)
	app := apps.Transitions()
	var prevRecall = 2.0
	var prevPower = 1e9
	for _, sleep := range []float64{2, 10, 30} {
		res, err := DutyCycling{SleepSec: sleep}.Run(tr, app)
		if err != nil {
			t.Fatal(err)
		}
		if res.Recall > prevRecall+0.05 {
			t.Errorf("recall should fall with interval: %.2f at %gs after %.2f", res.Recall, sleep, prevRecall)
		}
		if res.Power.TotalAvgMW > prevPower+1 {
			t.Errorf("power should fall with interval: %.1f at %gs after %.1f", res.Power.TotalAvgMW, sleep, prevPower)
		}
		prevRecall, prevPower = res.Recall, res.Power.TotalAvgMW
	}
	if prevRecall > 0.5 {
		t.Errorf("30s duty cycling recall = %.2f; paper reports deep losses", prevRecall)
	}
}

func TestDutyCyclingValidation(t *testing.T) {
	tr := robotTrace(t, 0.9)
	if _, err := (DutyCycling{}).Run(tr, apps.Steps()); err == nil {
		t.Error("zero sleep interval should fail")
	}
	if _, err := (Batching{}).Run(tr, apps.Steps()); err == nil {
		t.Error("zero batching interval should fail")
	}
}

func TestBatchingPerfectRecall(t *testing.T) {
	tr := robotTrace(t, 0.5)
	for _, app := range apps.AccelApps() {
		res, err := Batching{SleepSec: 10}.Run(tr, app)
		if err != nil {
			t.Fatal(err)
		}
		if res.Recall < 0.95 {
			t.Errorf("%s batching recall = %.3f, want ~1 (data is cached)", app.Name, res.Recall)
		}
		if res.Power.HubMW != 3.6 {
			t.Errorf("batching must include the MSP430 (3.6 mW), got %g", res.Power.HubMW)
		}
	}
}

func TestPredefinedActivitySameWakeupsForAllAccelApps(t *testing.T) {
	// PA is app-agnostic: it wakes on significant motion regardless of
	// the app, so wake-up counts must be identical (paper §5.3: one
	// power figure for all audio apps).
	tr := robotTrace(t, 0.5)
	pa := PredefinedActivity{Kind: SignificantMotion, Threshold: 0.15}
	var wakes []int
	for _, app := range apps.AccelApps() {
		res, err := pa.Run(tr, app)
		if err != nil {
			t.Fatal(err)
		}
		wakes = append(wakes, res.Power.WakeUps)
		if res.Recall < 0.95 {
			t.Errorf("%s PA recall = %.3f", app.Name, res.Recall)
		}
	}
	if wakes[0] != wakes[1] || wakes[1] != wakes[2] {
		t.Errorf("PA wake-ups differ across apps: %v", wakes)
	}
}

func TestPredefinedActivityErrors(t *testing.T) {
	tr := robotTrace(t, 0.9)
	if _, err := (PredefinedActivity{Kind: SignificantSound, Threshold: 1}).Run(tr, apps.Steps()); err == nil {
		t.Error("sound detector on an accel trace should fail")
	}
	if _, err := (PredefinedActivity{Kind: PAKind(9), Threshold: 1}).Run(tr, apps.Steps()); err == nil {
		t.Error("unknown kind should fail")
	}
	if PAKindFor(apps.Steps()) != SignificantMotion || PAKindFor(apps.Sirens()) != SignificantSound {
		t.Error("PAKindFor misroutes")
	}
}

func TestSidewinderAchievesMostOracleSavings(t *testing.T) {
	// Paper §5.2: Sidewinder reaches 92.7-95.7% of the possible savings
	// on accelerometer apps. Allow a wide band but require > 80%.
	tr := robotTrace(t, 0.5)
	for _, app := range apps.AccelApps() {
		oracle, err := Oracle{}.Run(tr, app)
		if err != nil {
			t.Fatal(err)
		}
		sw, err := Sidewinder{}.Run(tr, app)
		if err != nil {
			t.Fatal(err)
		}
		if sw.Recall < 1 {
			t.Errorf("%s Sidewinder recall = %.3f, want 1.0", app.Name, sw.Recall)
		}
		savings := (323 - sw.Power.TotalAvgMW) / (323 - oracle.Power.TotalAvgMW)
		if savings < 0.80 {
			t.Errorf("%s Sidewinder achieves only %.0f%% of oracle savings (sw %.1f, oracle %.1f)",
				app.Name, savings*100, sw.Power.TotalAvgMW, oracle.Power.TotalAvgMW)
		}
		if sw.Device == "" {
			t.Errorf("%s: no hub device recorded", app.Name)
		}
		if sw.HubUtilization <= 0 || sw.HubUtilization > 0.5 {
			t.Errorf("%s: hub utilization %.3f out of range", app.Name, sw.HubUtilization)
		}
	}
}

func TestSidewinderTraceMissingChannel(t *testing.T) {
	tr := robotTrace(t, 0.9)
	if _, err := (Sidewinder{}).Run(tr, apps.Sirens()); err == nil {
		t.Error("audio app on an accel trace should fail")
	}
}

func TestRescoreAgainst(t *testing.T) {
	tr := robotTrace(t, 0.9)
	app := apps.Steps()
	aa, err := AlwaysAwake{}.Run(tr, app)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := Sidewinder{}.Run(tr, app)
	if err != nil {
		t.Fatal(err)
	}
	sw.RescoreAgainst(aa.Detections, int(app.MatchTolSec*tr.RateHz))
	if sw.Recall < 0.9 {
		t.Errorf("recall vs always-awake baseline = %.3f", sw.Recall)
	}
	if len(sw.Truth) != len(aa.Detections) {
		t.Error("RescoreAgainst did not adopt the new truth")
	}
}

func TestResultString(t *testing.T) {
	tr := robotTrace(t, 0.9)
	res, err := Oracle{}.Run(tr, apps.Steps())
	if err != nil {
		t.Fatal(err)
	}
	if res.String() == "" {
		t.Error("empty result string")
	}
}

func TestDedupeEvents(t *testing.T) {
	in := []sensor.Event{
		{Label: "a", Start: 0, End: 10},
		{Label: "a", Start: 5, End: 15},
		{Label: "a", Start: 20, End: 25},
		{Label: "b", Start: 22, End: 30},
	}
	out := dedupeEvents(in)
	if len(out) != 3 {
		t.Fatalf("dedupe = %v", out)
	}
	if out[0].End != 15 {
		t.Errorf("merged end = %d, want 15", out[0].End)
	}
}

func TestPhoneDwellConservation(t *testing.T) {
	// Whatever the strategy, total dwell equals trace duration.
	tr := robotTrace(t, 0.5)
	for _, s := range []Strategy{
		AlwaysAwake{}, Oracle{}, DutyCycling{SleepSec: 5}, Batching{SleepSec: 5},
		PredefinedActivity{Kind: SignificantMotion, Threshold: 0.15}, Sidewinder{},
	} {
		res, err := s.Run(tr, apps.Steps())
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		total := res.Power.AsleepSec + res.Power.AwakeSec + res.Power.WakingSec + res.Power.SleepingSec
		want := float64(tr.Len()) / tr.RateHz
		if math.Abs(total-want) > 0.5 {
			t.Errorf("%s: dwell %.2f s, trace %.2f s", s.Name(), total, want)
		}
	}
}

func TestMeanDetectionLatency(t *testing.T) {
	r := &Result{
		Truth: []sensor.Event{
			{Label: "e", Start: 100, End: 120},
			{Label: "e", Start: 500, End: 520},
			{Label: "e", Start: 9000, End: 9010}, // never delivered
		},
		Deliveries: []Delivery{
			{Start: 0, End: 300, At: 300},
			{Start: 300, End: 600, At: 650},
		},
	}
	// Event 1: delivered at 300, started at 100 -> 200 samples = 4 s at
	// 50 Hz. Event 2: delivered at 650, started at 500 -> 150 = 3 s.
	lat, ok := r.MeanDetectionLatencySec(50)
	if !ok {
		t.Fatal("latency should be measurable")
	}
	if math.Abs(lat-3.5) > 1e-9 {
		t.Errorf("latency = %g s, want 3.5", lat)
	}
	// No deliveries -> not measurable.
	if _, ok := (&Result{Truth: r.Truth}).MeanDetectionLatencySec(50); ok {
		t.Error("no deliveries should be unmeasurable")
	}
	if _, ok := r.MeanDetectionLatencySec(0); ok {
		t.Error("zero rate should be unmeasurable")
	}
}

func TestDutyCyclingRecordsDeliveries(t *testing.T) {
	tr := robotTrace(t, 0.9)
	res, err := DutyCycling{SleepSec: 10}.Run(tr, apps.Steps())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Deliveries) == 0 {
		t.Fatal("duty cycling should record deliveries")
	}
	for _, d := range res.Deliveries {
		if d.At < d.End {
			t.Errorf("delivery %+v happens before its data ends", d)
		}
	}
	if lat, ok := res.MeanDetectionLatencySec(tr.RateHz); ok && lat < 0 {
		t.Errorf("negative latency %g", lat)
	}
}
