// Package sim implements the trace-driven simulator of the evaluation
// (paper §4): it replays a sensor trace under a sensing configuration
// (strategy), drives the phone's power state machine, delivers the data the
// configuration actually makes available to the application's main-CPU
// classifier, and reports energy, wake-ups, recall and precision.
package sim

import (
	"fmt"
	"sort"

	"sidewinder/internal/apps"
	"sidewinder/internal/power"
	"sidewinder/internal/sensor"
)

// Interval is a half-open sample range [Start, End) of trace data delivered
// to the application.
type Interval struct {
	Start, End int
}

// Delivery records when a chunk of trace data reached the application:
// the phone processed samples [Start, End) at sample-time At. Strategies
// that defer data (batching, duty cycling) populate it so experiments can
// measure detection latency (paper §5.4: batching "is not appropriate for
// applications with timeliness constraints").
type Delivery struct {
	Start, End int
	At         int
}

// Result is the outcome of one (strategy, application, trace) simulation.
type Result struct {
	Strategy string
	App      string
	Trace    string

	Power power.Report

	// Detections are the main-CPU classifier's outputs over the data the
	// strategy delivered.
	Detections []sensor.Event
	// Truth is the ground truth used for the metrics (label-filtered
	// trace events, or a baseline's detections for unlabeled traces).
	Truth []sensor.Event

	Recall    float64
	Precision float64
	TP, FP    int

	// Device is the hub microcontroller the strategy used ("" if none);
	// HubUtilization its cycle-budget fraction for Sidewinder.
	Device         string
	HubUtilization float64

	// Deliveries records when data reached the application, for
	// latency analysis (populated by DutyCycling and Batching).
	Deliveries []Delivery

	// Adapt reports the policy engine's trajectory and the hub-energy
	// decomposition (populated by AdaptiveSidewinder).
	Adapt *AdaptStats
}

// MeanDetectionLatencySec returns the average delay, in seconds, between a
// truth event starting and the application first receiving data covering
// that event's end. Events whose data never arrives are skipped; ok
// reports whether any event was measurable.
func (r *Result) MeanDetectionLatencySec(rateHz float64) (sec float64, ok bool) {
	if rateHz <= 0 || len(r.Deliveries) == 0 {
		return 0, false
	}
	var sum float64
	var n int
	for _, e := range r.Truth {
		for _, d := range r.Deliveries {
			if d.Start <= e.Start && e.End <= d.End+1 {
				sum += float64(d.At-e.Start) / rateHz
				n++
				break
			}
		}
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}

// String renders a one-line summary.
func (r *Result) String() string {
	return fmt.Sprintf("%s/%s on %s: %.1f mW, %d wake-ups, recall %.2f, precision %.2f",
		r.Strategy, r.App, r.Trace, r.Power.TotalAvgMW, r.Power.WakeUps, r.Recall, r.Precision)
}

// Strategy is one sensing configuration of paper §4.2.
type Strategy interface {
	Name() string
	Run(tr *sensor.Trace, app *apps.App) (*Result, error)
}

// mergeIntervals sorts and coalesces overlapping or touching intervals.
func mergeIntervals(in []Interval) []Interval {
	if len(in) == 0 {
		return nil
	}
	sort.Slice(in, func(i, j int) bool { return in[i].Start < in[j].Start })
	out := []Interval{in[0]}
	for _, iv := range in[1:] {
		last := &out[len(out)-1]
		if iv.Start <= last.End {
			if iv.End > last.End {
				last.End = iv.End
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

// detectOver runs the app's classifier over each delivered interval and
// merges duplicate detections from overlapping deliveries.
func detectOver(tr *sensor.Trace, app *apps.App, intervals []Interval) []sensor.Event {
	var out []sensor.Event
	for _, iv := range mergeIntervals(intervals) {
		out = append(out, app.Detector.Detect(tr, iv.Start, iv.End)...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return dedupeEvents(out)
}

// dedupeEvents merges overlapping detections of the same label.
func dedupeEvents(events []sensor.Event) []sensor.Event {
	var out []sensor.Event
	for _, e := range events {
		if n := len(out); n > 0 && out[n-1].Label == e.Label && e.Start < out[n-1].End {
			if e.End > out[n-1].End {
				out[n-1].End = e.End
			}
			continue
		}
		out = append(out, e)
	}
	return out
}

// Match scores detections against ground truth with the given tolerance in
// samples: a truth event is recalled if any detection overlaps it
// (tolerance-expanded); a detection is a true positive if it overlaps any
// truth event.
func Match(truth, detections []sensor.Event, tolSamples int) (recall, precision float64, tp, fp int) {
	recalled := 0
	for _, t := range truth {
		for _, d := range detections {
			if d.Overlaps(t.Start-tolSamples, t.End+tolSamples) {
				recalled++
				break
			}
		}
	}
	for _, d := range detections {
		hit := false
		for _, t := range truth {
			if d.Overlaps(t.Start-tolSamples, t.End+tolSamples) {
				hit = true
				break
			}
		}
		if hit {
			tp++
		} else {
			fp++
		}
	}
	recall, precision = 1, 1
	if len(truth) > 0 {
		recall = float64(recalled) / float64(len(truth))
	}
	if len(detections) > 0 {
		precision = float64(tp) / float64(len(detections))
	}
	return recall, precision, tp, fp
}

// finish assembles a Result from a completed phone timeline and delivered
// data. truthOverride, when non-nil, replaces the trace's labeled events
// (used for unlabeled human traces, scored against a baseline).
func finish(strategyName string, tr *sensor.Trace, app *apps.App, ph *power.Phone,
	hubMW float64, intervals []Interval, truthOverride []sensor.Event) *Result {

	truth := truthOverride
	if truth == nil {
		truth = tr.EventsLabeled(app.Label)
	}
	detections := detectOver(tr, app, intervals)
	tol := int(app.MatchTolSec * tr.RateHz)
	recall, precision, tp, fp := Match(truth, detections, tol)
	return &Result{
		Strategy:   strategyName,
		App:        app.Name,
		Trace:      tr.Name,
		Power:      power.Summarize(ph, hubMW),
		Detections: detections,
		Truth:      truth,
		Recall:     recall,
		Precision:  precision,
		TP:         tp,
		FP:         fp,
	}
}

// RescoreAgainst recomputes a result's metrics against a different truth
// set (e.g. Always-Awake detections on unlabeled human traces, paper §5.5).
func (r *Result) RescoreAgainst(truth []sensor.Event, tolSamples int) {
	r.Truth = truth
	r.Recall, r.Precision, r.TP, r.FP = Match(truth, r.Detections, tolSamples)
}
