package sim

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"sidewinder/internal/apps"
	"sidewinder/internal/link"
	"sidewinder/internal/telemetry"
)

// TestSidewinderLedgerConservation: the ledger's per-component totals must
// sum to the run's aggregate energy — the same number the power report
// computes from average draw × duration.
func TestSidewinderLedgerConservation(t *testing.T) {
	tr := robotTrace(t, 0.5)
	led := telemetry.NewLedger()
	s := Sidewinder{Telemetry: telemetry.Set{Ledger: led}}
	res, err := s.Run(tr, apps.Steps())
	if err != nil {
		t.Fatal(err)
	}

	dur := res.Power.AsleepSec + res.Power.WakingSec + res.Power.AwakeSec + res.Power.SleepingSec
	want := res.Power.TotalAvgMW * dur
	got := led.TotalMJ()
	if diff := math.Abs(got - want); diff > 1e-9*math.Max(1, want) {
		t.Fatalf("ledger total %.12g mJ != run aggregate %.12g mJ (diff %g)", got, want, diff)
	}

	// Phone components sum to the phone's share; hub.device carries the rest.
	var phone float64
	for _, c := range []telemetry.Component{
		telemetry.PhoneAsleep, telemetry.PhoneWaking,
		telemetry.PhoneAwake, telemetry.PhoneFallingAsleep,
	} {
		phone += led.EnergyMJ(c)
	}
	if diff := math.Abs(phone - res.Power.PhoneAvgMW*dur); diff > 1e-9*math.Max(1, phone) {
		t.Errorf("phone components sum to %.12g, report says %.12g", phone, res.Power.PhoneAvgMW*dur)
	}
	if hubMJ := led.EnergyMJ(telemetry.HubDevice); hubMJ <= 0 {
		t.Error("hub.device component is empty")
	}
	if led.TotalCycles() <= 0 {
		t.Error("no hub cycles attributed to stages")
	}
}

// TestSidewinderTelemetryDoesNotChangeResults: the instrumented run must be
// observationally identical to the bare run.
func TestSidewinderTelemetryDoesNotChangeResults(t *testing.T) {
	tr := robotTrace(t, 0.5)
	bare, err := Sidewinder{}.Run(tr, apps.Steps())
	if err != nil {
		t.Fatal(err)
	}
	instr, err := Sidewinder{Telemetry: telemetry.Set{
		Metrics: telemetry.NewRegistry(),
		Ledger:  telemetry.NewLedger(),
		Tracer:  telemetry.NewTracer(),
	}}.Run(tr, apps.Steps())
	if err != nil {
		t.Fatal(err)
	}
	if bare.Power != instr.Power {
		t.Errorf("telemetry changed the power report:\nbare  %+v\ninstr %+v", bare.Power, instr.Power)
	}
	if bare.Recall != instr.Recall || bare.Precision != instr.Precision {
		t.Errorf("telemetry changed detection metrics")
	}
}

// traceDoc mirrors the Chrome trace_event JSON Object Format for
// schema-checking exported traces.
type traceDoc struct {
	TraceEvents []map[string]any `json:"traceEvents"`
	DisplayUnit string           `json:"displayTimeUnit"`
}

// TestLossyLinkLedgerAndTrace is the acceptance test for the lossy-link
// path: the ledger's components sum to the run's aggregate energy within
// 1e-9, and the exported trace is schema-valid Chrome trace_event JSON
// containing wake, retransmission, and phone-state-transition events.
func TestLossyLinkLedgerAndTrace(t *testing.T) {
	tr := lossyTrace(t)
	set := telemetry.Set{
		Metrics: telemetry.NewRegistry(),
		Ledger:  telemetry.NewLedger(),
		Tracer:  telemetry.NewTracer(),
	}
	fault := link.FaultConfig{
		Seed:         41,
		DropProb:     0.05,
		BitFlipProb:  0.0003,
		TruncateProb: 0.01,
		DelayProb:    0.02,
		DelayTicks:   2,
	}
	res, err := LossyLinkRun(tr, apps.Steps(), LossyLinkConfig{
		Fault: fault, ARQ: &link.ARQConfig{}, Telemetry: set,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.HubWakes == 0 || res.PhoneWakeUps == 0 {
		t.Fatalf("run produced no wakes (hub %d, phone %d); test is vacuous", res.HubWakes, res.PhoneWakeUps)
	}

	// Ledger conservation.
	aggregate := res.PhoneEnergyMJ + res.HubEnergyMJ + res.LinkEnergyMJ
	if diff := math.Abs(set.Ledger.TotalMJ() - aggregate); diff > 1e-9*math.Max(1, aggregate) {
		t.Errorf("ledger total %.12g != aggregate %.12g (diff %g)", set.Ledger.TotalMJ(), aggregate, diff)
	}
	wire := set.Ledger.EnergyMJ(telemetry.LinkWire)
	retr := set.Ledger.EnergyMJ(telemetry.LinkRetransmit)
	if retr <= 0 {
		t.Error("faulty ARQ run attributed no retransmission energy")
	}
	if diff := math.Abs(wire + retr - res.LinkEnergyMJ); diff > 1e-9 {
		t.Errorf("wire %.12g + retransmit %.12g != link energy %.12g", wire, retr, res.LinkEnergyMJ)
	}

	// Metrics: the shared registry saw link traffic and retransmits.
	if v := set.Metrics.Counter("link.phone.tx_frames").Value(); v <= 0 {
		t.Error("link.phone.tx_frames counter is zero")
	}
	retrCount := set.Metrics.Counter("link.phone.arq_retransmits").Value() +
		set.Metrics.Counter("link.hub.arq_retransmits").Value()
	if retrCount <= 0 {
		t.Error("arq_retransmits counters are zero on a faulty wire")
	}

	// Trace: valid Chrome trace_event JSON with the required events.
	var buf bytes.Buffer
	if err := set.Tracer.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc traceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayUnit)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	names := make(map[string]int)
	for i, ev := range doc.TraceEvents {
		for _, key := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := ev[key]; !ok {
				t.Fatalf("event %d missing required key %q: %v", i, key, ev)
			}
		}
		name, _ := ev["name"].(string)
		names[name]++
	}
	for _, want := range []string{"wake.sent", "wake.delivered", "frame.retransmit", "phone.state", "frame.send"} {
		if names[want] == 0 {
			t.Errorf("trace contains no %q events (have %v)", want, names)
		}
	}
}

// TestLossyLinkTelemetryDoesNotChangeDelivery: wiring telemetry through the
// assembly must leave delivery outcomes bit-identical.
func TestLossyLinkTelemetryDoesNotChangeDelivery(t *testing.T) {
	tr := lossyTrace(t)
	fault := link.FaultConfig{Seed: 41, DropProb: 0.05, TruncateProb: 0.01}
	bare, err := LossyLinkRun(tr, apps.Steps(), LossyLinkConfig{Fault: fault, ARQ: &link.ARQConfig{}})
	if err != nil {
		t.Fatal(err)
	}
	instr, err := LossyLinkRun(tr, apps.Steps(), LossyLinkConfig{
		Fault: fault, ARQ: &link.ARQConfig{},
		Telemetry: telemetry.Set{
			Metrics: telemetry.NewRegistry(),
			Ledger:  telemetry.NewLedger(),
			Tracer:  telemetry.NewTracer(),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if bare.HubWakes != instr.HubWakes || bare.DeliveredWakes != instr.DeliveredWakes ||
		bare.Stats != instr.Stats {
		t.Errorf("telemetry changed delivery:\nbare  %+v\ninstr %+v", bare, instr)
	}
}
