package sim

import (
	"math"
	"testing"
	"time"

	"sidewinder/internal/apps"
	"sidewinder/internal/link"
	"sidewinder/internal/sensor"
	"sidewinder/internal/tracegen"
)

func lossyTrace(t *testing.T) *sensor.Trace {
	t.Helper()
	tr, err := tracegen.Robot(tracegen.RobotConfig{Seed: 7, Duration: 3 * time.Minute, IdleFraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestLossyLinkRunCleanWire is the control: with faults disabled, raw and
// ARQ replays both deliver every wake exactly once and need one push.
func TestLossyLinkRunCleanWire(t *testing.T) {
	tr := lossyTrace(t)
	for _, arq := range []*link.ARQConfig{nil, {}} {
		res, err := LossyLinkRun(tr, apps.Steps(), LossyLinkConfig{ARQ: arq})
		if err != nil {
			t.Fatal(err)
		}
		if res.HubWakes == 0 {
			t.Fatal("trace produced no wakes; test is vacuous")
		}
		if res.DeliveredRecall != 1 || res.DuplicateWakes != 0 {
			t.Errorf("arq=%v: recall %.2f, dups %d; want 1, 0", arq != nil, res.DeliveredRecall, res.DuplicateWakes)
		}
		if res.PushAttempts != 1 {
			t.Errorf("arq=%v: clean wire needed %d push attempts", arq != nil, res.PushAttempts)
		}
	}
}

// TestLossyLinkRunARQRecovers exercises the headline claim: at a moderate
// fault mix the ARQ replay still delivers every hub wake exactly once,
// while the raw replay at a high drop rate demonstrably loses some.
func TestLossyLinkRunARQRecovers(t *testing.T) {
	tr := lossyTrace(t)
	fault := link.FaultConfig{
		Seed:         41,
		DropProb:     0.05,
		BitFlipProb:  0.0003,
		TruncateProb: 0.01,
		DelayProb:    0.02,
		DelayTicks:   2,
	}
	res, err := LossyLinkRun(tr, apps.Steps(), LossyLinkConfig{Fault: fault, ARQ: &link.ARQConfig{}})
	if err != nil {
		t.Fatal(err)
	}
	if res.HubWakes == 0 {
		t.Fatal("trace produced no wakes; test is vacuous")
	}
	if res.DeliveredRecall != 1 {
		t.Errorf("ARQ recall = %.3f (%d/%d), want 1", res.DeliveredRecall, res.DeliveredWakes, res.HubWakes)
	}
	if res.DuplicateWakes != 0 {
		t.Errorf("ARQ delivered %d duplicate wakes", res.DuplicateWakes)
	}
	retr := res.Stats.PhoneARQ.Retransmits + res.Stats.HubARQ.Retransmits
	if retr == 0 {
		t.Error("faulty wire caused no retransmissions; fault injection not engaged")
	}
	if res.LinkEnergyMJ <= 0 || res.LinkAvgMW <= 0 {
		t.Errorf("link energy not accounted: %.3f mJ, %.4f mW", res.LinkEnergyMJ, res.LinkAvgMW)
	}

	raw, err := LossyLinkRun(tr, apps.Steps(), LossyLinkConfig{
		Fault: link.FaultConfig{Seed: 41, DropProb: 0.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if raw.DeliveredRecall >= 1 {
		t.Errorf("raw link at 30%% drop lost nothing (recall %.3f); fault path inert", raw.DeliveredRecall)
	}
}

// TestLossyLinkRunDeterministic: identical config, identical result —
// the whole replay is driven by seeded streams.
func TestLossyLinkRunDeterministic(t *testing.T) {
	tr := lossyTrace(t)
	cfg := LossyLinkConfig{
		Fault: link.FaultConfig{Seed: 9, DropProb: 0.04, BitFlipProb: 0.0004, DelayProb: 0.05, DelayTicks: 3},
		ARQ:   &link.ARQConfig{},
	}
	a, err := LossyLinkRun(tr, apps.Steps(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := LossyLinkRun(tr, apps.Steps(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Errorf("two identical runs diverged:\n%+v\n%+v", a, b)
	}
	if math.Abs(a.LinkAvgMW-b.LinkAvgMW) > 0 {
		t.Errorf("link power diverged: %v vs %v", a.LinkAvgMW, b.LinkAvgMW)
	}
}
