// Package sidewinder is an energy-efficient, developer-friendly framework
// for continuous mobile sensing, reproducing the system described in
// "Sidewinder: An Energy Efficient and Developer Friendly Heterogeneous
// Architecture for Continuous Mobile Sensing" (ASPLOS 2016).
//
// Sidewinder splits energy-efficient event detection between the platform
// and the application developer: the platform ships a catalog of sensor
// data processing algorithms that run on a low-power sensor hub, and
// developers chain and parameterize those algorithms into custom wake-up
// conditions. Conditions are compiled to an intermediate language, pushed
// to the hub, and interpreted there while the main processor sleeps; when
// a condition's final admission-control stage fires, the main processor is
// woken and the application receives a buffer of raw sensor data.
//
// A wake-up condition is built exactly like the paper's Java API
// (Fig. 2a):
//
//	p := sidewinder.NewPipeline("significantMotion")
//	for _, ch := range []sidewinder.SensorChannel{
//		sidewinder.AccelX, sidewinder.AccelY, sidewinder.AccelZ,
//	} {
//		p.AddBranch(sidewinder.NewBranch(ch).Add(sidewinder.MovingAverage(10)))
//	}
//	p.Add(sidewinder.VectorMagnitude())
//	p.Add(sidewinder.MinThreshold(15))
//
//	bed, _ := sidewinder.NewTestbed(sidewinder.TestbedConfig{})
//	id, device, _ := bed.Push(p, sidewinder.ListenerFunc(func(e sidewinder.Event) {
//		// main processor woken: e.Data holds the hub's raw buffer
//	}))
//
// The package also exposes the evaluation machinery used to reproduce the
// paper's results: synthetic trace generators, the six reference
// applications, the sensing strategies of §4.2 (Always Awake, Duty
// Cycling, Batching, Predefined Activity, Sidewinder, Oracle) and the
// experiment harness for every table and figure.
package sidewinder

import (
	"sidewinder/internal/core"
	"sidewinder/internal/ir"
)

// Pipeline building blocks (paper §3.2). These are aliases of the core
// types so values flow freely between the public API and the evaluation
// helpers.
type (
	// Pipeline is a ProcessingPipeline: an entire wake-up condition.
	Pipeline = core.Pipeline
	// Branch is a ProcessingBranch: data flow from one sensor channel
	// through single-input algorithms.
	Branch = core.Branch
	// Stage is one parameterized algorithm instance.
	Stage = core.Stage
	// SensorChannel names a hub input channel.
	SensorChannel = core.SensorChannel
	// Catalog is the platform's algorithm catalog.
	Catalog = core.Catalog
	// Plan is a validated, fully resolved wake-up condition.
	Plan = core.Plan
)

// Sensor channels of the prototype hub (paper §3.4).
const (
	AccelX = core.AccelX
	AccelY = core.AccelY
	AccelZ = core.AccelZ
	Mic    = core.Mic
)

// Sampling rates of the prototype's sensors in Hz.
const (
	AccelRateHz = core.AccelRateHz
	AudioRateHz = core.AudioRateHz
)

// NewPipeline returns an empty wake-up condition with a diagnostic name.
func NewPipeline(name string) *Pipeline { return core.NewPipeline(name) }

// NewBranch returns a branch rooted at a sensor channel.
func NewBranch(source SensorChannel) *Branch { return core.NewBranch(source) }

// DefaultCatalog returns the platform algorithm catalog (paper §3.6).
func DefaultCatalog() *Catalog { return core.DefaultCatalog() }

// Validate checks a pipeline against the platform catalog and resolves it
// into a Plan.
func Validate(p *Pipeline) (*Plan, error) { return p.Validate(core.DefaultCatalog()) }

// CompileIR validates a pipeline and returns its intermediate-language
// program (paper §3.3, Fig. 2c), the form pushed to the sensor hub.
func CompileIR(p *Pipeline) (string, error) {
	plan, err := p.Validate(core.DefaultCatalog())
	if err != nil {
		return "", err
	}
	return ir.CompileToText(plan), nil
}

// ParseIR parses intermediate-language text and binds it against the
// platform catalog, returning the executable plan. It is what a hub
// implementation runs on a received configuration.
func ParseIR(text string) (*Plan, error) {
	return ir.ParseAndBind(text, core.DefaultCatalog())
}

// Stage constructors (paper §3.6). Each returns an algorithm stub that is
// validated when the pipeline is pushed.

// Window partitions a sample stream into windows of size samples emitted
// every step samples (step 0 means non-overlapping); shape is
// "rectangular" or "hamming".
func Window(size, step int, shape string) Stage { return core.Window(size, step, shape) }

// FFT transforms a window into an interleaved complex spectrum.
func FFT() Stage { return core.FFT() }

// IFFT inverts an interleaved complex spectrum back into a real block.
func IFFT() Stage { return core.IFFT() }

// SpectralMag reduces a complex spectrum to per-bin magnitudes.
func SpectralMag() Stage { return core.SpectralMag() }

// MovingAverage smooths a stream over the last size samples.
func MovingAverage(size int) Stage { return core.MovingAverage(size) }

// ExpMovingAverage smooths a stream with factor alpha in (0, 1].
func ExpMovingAverage(alpha float64) Stage { return core.ExpMovingAverage(alpha) }

// LowPass applies an FFT-based low-pass filter at cutoff Hz over
// power-of-two blocks.
func LowPass(cutoff float64, block int) Stage { return core.LowPass(cutoff, block) }

// HighPass applies an FFT-based high-pass filter at cutoff Hz over
// power-of-two blocks.
func HighPass(cutoff float64, block int) Stage { return core.HighPass(cutoff, block) }

// IIRLowPass applies a streaming biquad low-pass at cutoff Hz: the cheap,
// per-sample alternative to the FFT block filter, feasible on FPU-less
// microcontrollers.
func IIRLowPass(cutoff, rate float64) Stage { return core.IIRLowPass(cutoff, rate) }

// IIRHighPass applies a streaming biquad high-pass at cutoff Hz.
func IIRHighPass(cutoff, rate float64) Stage { return core.IIRHighPass(cutoff, rate) }

// GoertzelBank scans [bandLow, bandHigh] Hz with n fixed-point Goertzel
// detectors over blocks of the given size, emitting the best normalized
// tone score per block — a tone detector cheap enough for the MSP430.
func GoertzelBank(bandLow, bandHigh, rate float64, block, detectors int) Stage {
	return core.GoertzelBank(bandLow, bandHigh, rate, block, detectors)
}

// VectorMagnitude aggregates N scalar branches into their Euclidean
// magnitude.
func VectorMagnitude() Stage { return core.VectorMagnitude() }

// ZeroCrossingRate computes the zero-crossing rate of each window.
func ZeroCrossingRate() Stage { return core.ZeroCrossingRate() }

// ZCRVariance computes the variance of per-sub-window zero-crossing rates.
func ZCRVariance(subwindows int) Stage { return core.ZCRVariance(subwindows) }

// Stat computes a windowed statistic: one of mean, variance, stddev, min,
// max, range, rms, median, meanAbs, energy.
func Stat(op string) Stage { return core.Stat(op) }

// DominantFreqMag emits the magnitude of the dominant non-DC spectral bin.
func DominantFreqMag() Stage { return core.DominantFreqMag() }

// Tonality emits the peak-to-mean spectral ratio when the dominant bin
// lies within [bandLow, bandHigh] Hz; rate is the signal's sampling rate.
func Tonality(bandLow, bandHigh, rate float64) Stage {
	return core.Tonality(bandLow, bandHigh, rate)
}

// Delta emits differences between consecutive values.
func Delta() Stage { return core.Delta() }

// Abs emits absolute values.
func Abs() Stage { return core.Abs() }

// Ratio aggregates exactly two scalar branches into first/second.
func Ratio() Stage { return core.Ratio() }

// And aggregates N scalar branches, emitting only when every branch
// produced a value for the same emission.
func And() Stage { return core.And() }

// MinThreshold admits values >= min (admission control).
func MinThreshold(min float64) Stage { return core.MinThreshold(min) }

// MinThresholdSustained admits values >= min once the condition has held
// for sustain consecutive emissions.
func MinThresholdSustained(min float64, sustain int) Stage {
	return core.MinThresholdSustained(min, sustain)
}

// MaxThreshold admits values <= max.
func MaxThreshold(max float64) Stage { return core.MaxThreshold(max) }

// BandThreshold admits values in [min, max].
func BandThreshold(min, max float64) Stage { return core.BandThreshold(min, max) }

// BandThresholdSustained admits values in [min, max] once the condition
// has held for sustain consecutive emissions.
func BandThresholdSustained(min, max float64, sustain int) Stage {
	return core.BandThresholdSustained(min, max, sustain)
}
