package sidewinder_test

import (
	"strings"
	"testing"
	"time"

	"sidewinder"
)

// TestQuickstartFlow exercises the README's quickstart path end to end
// through the public API only.
func TestQuickstartFlow(t *testing.T) {
	p := sidewinder.NewPipeline("significantMotion")
	for _, ch := range []sidewinder.SensorChannel{sidewinder.AccelX, sidewinder.AccelY, sidewinder.AccelZ} {
		p.AddBranch(sidewinder.NewBranch(ch).Add(sidewinder.MovingAverage(10)))
	}
	p.Add(sidewinder.VectorMagnitude())
	p.Add(sidewinder.MinThreshold(15))

	irText, err := sidewinder.CompileIR(p)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(irText, "vectorMagnitude(id=4)") || !strings.Contains(irText, "5 -> OUT;") {
		t.Errorf("IR missing expected statements:\n%s", irText)
	}
	plan, err := sidewinder.ParseIR(irText)
	if err != nil {
		t.Fatal(err)
	}
	if plan.OutputNode() != 5 {
		t.Errorf("output node = %d", plan.OutputNode())
	}

	bed, err := sidewinder.NewTestbed(sidewinder.TestbedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	fired := 0
	_, device, err := bed.Push(p, sidewinder.ListenerFunc(func(e sidewinder.Event) {
		fired++
		if len(e.Data) == 0 {
			t.Error("wake event without raw data buffer")
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	if device != "MSP430" {
		t.Errorf("device = %s", device)
	}
	for i := 0; i < 30; i++ {
		bed.Feed(sidewinder.AccelX, 11)
		bed.Feed(sidewinder.AccelY, 11)
		bed.Feed(sidewinder.AccelZ, 11)
	}
	if fired == 0 {
		t.Fatal("condition never fired")
	}
}

func TestDeviceSelectionThroughPublicAPI(t *testing.T) {
	plan, err := sidewinder.Validate(sidewinder.Sirens().Wake)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := sidewinder.SelectDevice(sidewinder.Devices(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if dev.Name != "LM4F120" {
		t.Errorf("sirens on %s, want LM4F120", dev.Name)
	}
	if sidewinder.MSP430().ActivePowerMW != 3.6 || sidewinder.LM4F120().ActivePowerMW != 49.4 {
		t.Error("device power constants wrong")
	}
}

func TestSimulationThroughPublicAPI(t *testing.T) {
	tr, err := sidewinder.GenerateRobotTrace(sidewinder.RobotConfig{
		Seed: 5, Duration: 5 * time.Minute, IdleFraction: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	app := sidewinder.Headbutts()
	oracle, err := sidewinder.Simulate(sidewinder.Oracle{}, tr, app)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := sidewinder.Simulate(sidewinder.SidewinderStrategy{}, tr, app)
	if err != nil {
		t.Fatal(err)
	}
	aa, err := sidewinder.Simulate(sidewinder.AlwaysAwake{}, tr, app)
	if err != nil {
		t.Fatal(err)
	}
	if !(oracle.Power.TotalAvgMW < sw.Power.TotalAvgMW && sw.Power.TotalAvgMW < aa.Power.TotalAvgMW) {
		t.Errorf("power ordering violated: oracle %.1f, sw %.1f, aa %.1f",
			oracle.Power.TotalAvgMW, sw.Power.TotalAvgMW, aa.Power.TotalAvgMW)
	}
	if sw.Recall < 1 {
		t.Errorf("sidewinder recall = %.2f", sw.Recall)
	}
}

func TestAllAppsExposed(t *testing.T) {
	if got := len(sidewinder.Apps()); got != 6 {
		t.Fatalf("Apps() = %d, want 6", got)
	}
	for _, app := range sidewinder.Apps() {
		if _, err := sidewinder.Validate(app.Wake); err != nil {
			t.Errorf("%s: %v", app.Name, err)
		}
	}
}

func TestAudioGenerationThroughPublicAPI(t *testing.T) {
	tr, err := sidewinder.GenerateAudioTrace(sidewinder.NewAudioConfig(9, time.Minute, "office"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.RateHz != sidewinder.AudioRateHz {
		t.Errorf("rate = %g", tr.RateHz)
	}
	if _, err := sidewinder.GenerateHumanTrace(sidewinder.HumanConfig{
		Seed: 2, Duration: time.Minute, Profile: "office",
	}); err != nil {
		t.Fatal(err)
	}
}

func TestEvalSurfaceThroughPublicAPI(t *testing.T) {
	tb := sidewinder.Table1()
	if len(tb.Rows) != 4 {
		t.Fatalf("Table1 rows = %d", len(tb.Rows))
	}
	w, err := sidewinder.GenerateEvalWorkload(sidewinder.EvalOptions{
		Seed:             2,
		RobotRunDuration: time.Minute,
		AudioDuration:    time.Minute,
		HumanDuration:    2 * time.Minute,
		SleepIntervals:   []float64{2, 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.RobotRuns) != 18 {
		t.Fatalf("robot runs = %d", len(w.RobotRuns))
	}
	res, err := sidewinder.Figure6(sidewinder.EvalOptions{SleepIntervals: []float64{2, 10}}, w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.Render() == "" {
		t.Error("empty Figure 6 render")
	}
}
