# Tier-1 gate: everything must build, vet clean, and pass the full test
# suite under the race detector (the parallel evaluation harness fans
# simulation cells across goroutines, so -race is part of the contract).
# `make fuzz` runs the native fuzz targets (link deframer, IR parser) for
# a short fixed budget on top of their committed corpora; run it before
# shipping protocol or parser changes.

GO ?= go
FUZZTIME ?= 10s

.PHONY: verify build vet test race bench bench-telemetry cover fuzz

verify: build vet race
	@echo "verify clean — consider 'make fuzz' (FUZZTIME=$(FUZZTIME) per target) for parser/framing changes"

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# bench-telemetry proves the observability contract: registry/tracer
# primitives and the instrumented interpreter hot path must report
# 0 allocs/op with sinks disabled.
bench-telemetry:
	$(GO) test -run '^$$' -bench . -benchmem ./internal/telemetry
	$(GO) test -run '^$$' -bench 'BenchmarkPushSample' -benchmem ./internal/interp

# cover writes an aggregate coverage profile and prints the per-package
# summary; open coverage.html for the annotated source view.
cover:
	$(GO) test -coverprofile=coverage.out -covermode=atomic ./...
	$(GO) tool cover -func=coverage.out | tail -1
	$(GO) tool cover -html=coverage.out -o coverage.html

fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeFrame$$' -fuzztime $(FUZZTIME) ./internal/link
	$(GO) test -run '^$$' -fuzz '^FuzzParse$$' -fuzztime $(FUZZTIME) ./internal/ir
