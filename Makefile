# Tier-1 gate: everything must build, vet clean, and pass the full test
# suite under the race detector (the parallel evaluation harness fans
# simulation cells across goroutines, so -race is part of the contract).
# `make fuzz` runs the native fuzz targets (link deframer, IR parser) for
# a short fixed budget on top of their committed corpora; run it before
# shipping protocol or parser changes.

GO ?= go
FUZZTIME ?= 10s

.PHONY: verify build vet test race bench fuzz

verify: build vet race
	@echo "verify clean — consider 'make fuzz' (FUZZTIME=$(FUZZTIME) per target) for parser/framing changes"

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeFrame$$' -fuzztime $(FUZZTIME) ./internal/link
	$(GO) test -run '^$$' -fuzz '^FuzzParse$$' -fuzztime $(FUZZTIME) ./internal/ir
