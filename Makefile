# Tier-1 gate: everything must build, vet clean, and pass the full test
# suite under the race detector (the parallel evaluation harness fans
# simulation cells across goroutines, so -race is part of the contract).

GO ?= go

.PHONY: verify build vet test race bench

verify: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem .
