# Tier-1 gate: everything must build, vet clean, and pass the full test
# suite under the race detector (the parallel evaluation harness fans
# simulation cells across goroutines, so -race is part of the contract).
# `make fuzz` runs the native fuzz targets (link deframer, IR parser,
# DAG compiler, heartbeat codec) for a short fixed budget on top of their
# committed corpora; run it before shipping protocol or parser changes.

GO ?= go
FUZZTIME ?= 10s
# COVER_FLOOR is the minimum total statement coverage `make cover-check`
# accepts, in percent. CI fails below it; raise it as coverage grows.
COVER_FLOOR ?= 83.5
# PKG_FLOORS pins per-package floors on top of the total: the DAG compile
# pass is the correctness keystone of cross-app sharing, and the adaptive
# policy engine decides what programs reach the hub, so internal/ir and
# internal/adapt must each stay at >=85% on their own.
PKG_FLOORS = sidewinder/internal/ir=85.0 sidewinder/internal/adapt=85.0
# BENCH_PKGS are the packages whose benchmarks carry allocs/op contracts
# (hot paths that must not regress).
BENCH_PKGS = . ./internal/interp ./internal/telemetry

.PHONY: verify build vet staticcheck test race bench bench-telemetry \
	bench-baseline bench-check cover cover-check fuzz soak chaos

verify: build vet staticcheck race
	@echo "verify clean — consider 'make fuzz' (FUZZTIME=$(FUZZTIME) per target) for parser/framing changes"

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# staticcheck runs when the binary is on PATH (CI installs it); on a bare
# toolchain `make verify` still passes but says so LOUDLY — a silent skip
# once hid real staticcheck findings until CI caught them. CI sets
# STATICCHECK_REQUIRED=1 so the skip branch can never fire there: a
# missing binary is a hard failure, not a banner.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	elif [ -n "$(STATICCHECK_REQUIRED)" ]; then \
		echo "ERROR: STATICCHECK_REQUIRED is set but staticcheck is not on PATH."; \
		echo "Install it with: go install honnef.co/go/tools/cmd/staticcheck@latest"; \
		exit 1; \
	else \
		echo "============================================================"; \
		echo "WARNING: staticcheck SKIPPED — binary not on PATH."; \
		echo "This verify run is INCOMPLETE; CI will run staticcheck and"; \
		echo "may fail where this pass did not. Install it with:"; \
		echo "  go install honnef.co/go/tools/cmd/staticcheck@latest"; \
		echo "============================================================"; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# bench-telemetry proves the observability contract: registry/tracer
# primitives and the instrumented interpreter hot path must report
# 0 allocs/op with sinks disabled.
bench-telemetry:
	$(GO) test -run '^$$' -bench . -benchmem ./internal/telemetry
	$(GO) test -run '^$$' -bench 'BenchmarkPushSample' -benchmem ./internal/interp

# bench-baseline regenerates the committed allocs/op baseline. Run it on
# any machine — the regression gate compares only allocs/op, which is
# deterministic, never timings.
bench-baseline:
	$(GO) test -run '^$$' -bench . -benchmem $(BENCH_PKGS) | tee docs/bench/baseline.txt

# bench-check reruns the benchmarks and fails on any allocs/op regression
# against docs/bench/baseline.txt (CI's bench-regression gate).
bench-check:
	$(GO) test -run '^$$' -bench . -benchmem $(BENCH_PKGS) | tee bench-current.txt
	scripts/check_bench_allocs.sh docs/bench/baseline.txt bench-current.txt

# cover writes an aggregate coverage profile and prints the per-package
# summary; open coverage.html for the annotated source view.
cover:
	$(GO) test -coverprofile=coverage.out -covermode=atomic ./...
	$(GO) tool cover -func=coverage.out | tail -1
	$(GO) tool cover -html=coverage.out -o coverage.html

# cover-check enforces the total and per-package coverage floors on an
# existing coverage.out (CI's coverage gate; run `make cover` first).
cover-check:
	scripts/check_coverage.sh coverage.out $(COVER_FLOOR) $(PKG_FLOORS)

# soak boots a race-instrumented sidewinderd, replays a fleet population
# at it with fleetload, SIGTERMs the daemon and asserts a clean drain with
# ledger conservation (CI's race-soak gate). SOAK_DEVICES scales the load.
SOAK_DEVICES ?= 200
soak:
	$(GO) build -race -o bin/sidewinderd-race ./cmd/sidewinderd
	$(GO) build -race -o bin/fleetload-race ./cmd/fleetload
	SOAK_DEVICES=$(SOAK_DEVICES) scripts/soak.sh bin/sidewinderd-race bin/fleetload-race

# chaos runs the chaos soak: race-built fleetload -> chaosproxy ->
# sidewinderd across every fault profile and seed in the sweep, each leg
# asserting zero unrecovered devices, bit-for-bit per-device totals (the
# bye handshake), and a clean conserving drain — plus a SIGKILL leg that
# corrupts the newest checkpoint and recovers from the .bak
# (scripts/chaos.sh; CI's chaos-soak gate). CHAOS_DEVICES scales the load,
# CHAOS_PROFILES / CHAOS_SEEDS shape the sweep.
CHAOS_DEVICES ?= 60
chaos:
	$(GO) build -race -o bin/sidewinderd-race ./cmd/sidewinderd
	$(GO) build -race -o bin/fleetload-race ./cmd/fleetload
	$(GO) build -race -o bin/chaosproxy-race ./cmd/chaosproxy
	CHAOS_DEVICES=$(CHAOS_DEVICES) scripts/chaos.sh \
		bin/sidewinderd-race bin/fleetload-race bin/chaosproxy-race

fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeFrame$$' -fuzztime $(FUZZTIME) ./internal/link
	$(GO) test -run '^$$' -fuzz '^FuzzParse$$' -fuzztime $(FUZZTIME) ./internal/ir
	$(GO) test -run '^$$' -fuzz '^FuzzDAGCompile$$' -fuzztime $(FUZZTIME) ./internal/ir
	$(GO) test -run '^$$' -fuzz '^FuzzHeartbeat$$' -fuzztime $(FUZZTIME) ./internal/resilience
	$(GO) test -run '^$$' -fuzz '^FuzzQ15Roundtrip$$' -fuzztime $(FUZZTIME) ./internal/dsp
