# Tier-1 gate: everything must build, vet clean, and pass the full test
# suite under the race detector (the parallel evaluation harness fans
# simulation cells across goroutines, so -race is part of the contract).
# `make fuzz` runs the native fuzz targets (link deframer, IR parser,
# heartbeat codec) for a short fixed budget on top of their committed
# corpora; run it before shipping protocol or parser changes.

GO ?= go
FUZZTIME ?= 10s

.PHONY: verify build vet staticcheck test race bench bench-telemetry cover fuzz

verify: build vet staticcheck race
	@echo "verify clean — consider 'make fuzz' (FUZZTIME=$(FUZZTIME) per target) for parser/framing changes"

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# staticcheck runs when the binary is on PATH (CI installs it) and is a
# no-op otherwise, so `make verify` works on a bare toolchain.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# bench-telemetry proves the observability contract: registry/tracer
# primitives and the instrumented interpreter hot path must report
# 0 allocs/op with sinks disabled.
bench-telemetry:
	$(GO) test -run '^$$' -bench . -benchmem ./internal/telemetry
	$(GO) test -run '^$$' -bench 'BenchmarkPushSample' -benchmem ./internal/interp

# cover writes an aggregate coverage profile and prints the per-package
# summary; open coverage.html for the annotated source view.
cover:
	$(GO) test -coverprofile=coverage.out -covermode=atomic ./...
	$(GO) tool cover -func=coverage.out | tail -1
	$(GO) tool cover -html=coverage.out -o coverage.html

fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeFrame$$' -fuzztime $(FUZZTIME) ./internal/link
	$(GO) test -run '^$$' -fuzz '^FuzzParse$$' -fuzztime $(FUZZTIME) ./internal/ir
	$(GO) test -run '^$$' -fuzz '^FuzzHeartbeat$$' -fuzztime $(FUZZTIME) ./internal/resilience
