package sidewinder_test

import (
	"math"
	"testing"
	"time"

	"sidewinder/internal/apps"
	"sidewinder/internal/core"
	"sidewinder/internal/interp"
	"sidewinder/internal/sensor"
	"sidewinder/internal/tracegen"
)

// catWake is one wake at an absolute sample position, compared bit-exactly.
type catWake struct {
	At     int
	NodeID int
	Value  uint64
	Seq    int64
}

// catalogTraces synthesizes one trace per modality for the catalog-wide
// block-equivalence property test.
func catalogTraces(t *testing.T) map[string]*sensor.Trace {
	t.Helper()
	robot, err := tracegen.Robot(tracegen.RobotConfig{
		Seed: 5, Duration: 2 * time.Minute, IdleFraction: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	audio, err := tracegen.Audio(tracegen.NewAudioConfig(9, 30*time.Second, tracegen.CoffeeShopAudio))
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*sensor.Trace{"accel": robot, "audio": audio}
}

// traceFor picks the modality trace matching an app's channels.
func traceFor(traces map[string]*sensor.Trace, app *apps.App) *sensor.Trace {
	for _, ch := range app.Channels {
		if ch == core.Mic {
			return traces["audio"]
		}
	}
	return traces["accel"]
}

// TestCatalogBlockEquivalence is the catalog-wide property test: for every
// application's wake-up condition, in both precisions, PushBlock produces
// byte-identical wake sequences and work meters to a PushSample loop at
// every chunking.
func TestCatalogBlockEquivalence(t *testing.T) {
	traces := catalogTraces(t)
	cat := core.DefaultCatalog()

	for _, app := range apps.All() {
		plan, err := app.Wake.Validate(cat)
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		tr := traceFor(traces, app)
		n := tr.Len()
		channels := make([][]float64, len(plan.Channels))
		for ci, ch := range plan.Channels {
			samples, ok := tr.Channels[ch]
			if !ok {
				t.Fatalf("%s: trace lacks %s", app.Name, ch)
			}
			channels[ci] = samples
		}

		for _, prec := range []interp.Precision{interp.Float64, interp.Q15} {
			ref, err := interp.NewPrecision(plan, prec)
			if err != nil {
				t.Fatal(err)
			}
			var want []catWake
			for i := 0; i < n; i++ {
				for ci, ch := range plan.Channels {
					for _, w := range ref.PushSample(ch, channels[ci][i]) {
						want = append(want, catWake{i, w.NodeID, math.Float64bits(w.Value), w.Seq})
					}
				}
			}

			for _, chunk := range []int{64, 1024, n} {
				m, err := interp.NewPrecision(plan, prec)
				if err != nil {
					t.Fatal(err)
				}
				var got []catWake
				for base := 0; base < n; base += chunk {
					end := base + chunk
					if end > n {
						end = n
					}
					// Per-chunk wakes from different channels re-merge by
					// absolute offset (stable in channel order) to restore
					// the per-sample interleave.
					var pend []catWake
					for ci, ch := range plan.Channels {
						for _, w := range m.PushBlock(ch, channels[ci][base:end]) {
							pend = append(pend, catWake{base + w.Off, w.NodeID, math.Float64bits(w.Value), w.Seq})
						}
					}
					for i := 1; i < len(pend); i++ {
						for j := i; j > 0 && pend[j].At < pend[j-1].At; j-- {
							pend[j], pend[j-1] = pend[j-1], pend[j]
						}
					}
					got = append(got, pend...)
				}

				label := app.Name + "/" + prec.String()
				if len(got) != len(want) {
					t.Fatalf("%s chunk %d: %d wakes, want %d", label, chunk, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s chunk %d: wake %d = %+v, want %+v", label, chunk, i, got[i], want[i])
					}
				}
				if ref.Work() != m.Work() {
					t.Fatalf("%s chunk %d: work meter diverged: %+v vs %+v",
						label, chunk, ref.Work(), m.Work())
				}
			}
		}
	}
}
