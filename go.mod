module sidewinder

go 1.22
