package sidewinder_test

import (
	"testing"
	"time"

	"sidewinder/internal/apps"
	"sidewinder/internal/core"
	"sidewinder/internal/interp"
	"sidewinder/internal/sensor"
	"sidewinder/internal/tracegen"
)

// fidelityScenario is one tracegen scenario with a pinned ceiling on the
// wake-decision divergence Q15 mode may introduce over it.
type fidelityScenario struct {
	name string
	gen  func() (*sensor.Trace, error)
	// maxDivergence bounds, per app, the fraction of samples whose fired
	// decision differs between float64 and Q15 execution. Measured
	// divergence is zero on every (scenario, app) cell today — the
	// catalog's thresholds sit far from the Q15 grid's rounding error at
	// decision time — so the pins are pure headroom; a regression that
	// widens Q15's decision error trips them.
	maxDivergence float64
}

// firedBitmap replays the trace through one machine on the block path and
// returns the per-sample wake decision.
func firedBitmap(t *testing.T, plan *core.Plan, prec interp.Precision, tr *sensor.Trace) []bool {
	t.Helper()
	m, err := interp.NewPrecision(plan, prec)
	if err != nil {
		t.Fatal(err)
	}
	n := tr.Len()
	fired := make([]bool, n)
	const chunk = 4096
	for base := 0; base < n; base += chunk {
		end := base + chunk
		if end > n {
			end = n
		}
		for _, ch := range plan.Channels {
			for _, w := range m.PushBlock(ch, tr.Channels[ch][base:end]) {
				fired[base+w.Off] = true
			}
		}
	}
	return fired
}

// TestQ15WakeDecisionFidelity pins how far Q15 execution may move the wake
// decisions relative to float64 across the tracegen scenarios: for every
// catalog application the per-sample divergence fraction must stay under
// the scenario's ceiling. Q15 is a lossy substrate by design — the point
// of the pin is that its loss stays small and stable.
func TestQ15WakeDecisionFidelity(t *testing.T) {
	scenarios := []fidelityScenario{
		{
			name: "robot",
			gen: func() (*sensor.Trace, error) {
				return tracegen.Robot(tracegen.RobotConfig{
					Seed: 11, Duration: 5 * time.Minute, IdleFraction: 0.5,
				})
			},
			maxDivergence: 0.005,
		},
		{
			name: "audio",
			gen: func() (*sensor.Trace, error) {
				return tracegen.Audio(tracegen.NewAudioConfig(13, 2*time.Minute, tracegen.CoffeeShopAudio))
			},
			maxDivergence: 0.005,
		},
		{
			name: "human",
			gen: func() (*sensor.Trace, error) {
				return tracegen.Human(tracegen.HumanConfig{
					Seed: 17, Duration: 30 * time.Minute, Profile: tracegen.Commute,
				})
			},
			maxDivergence: 0.005,
		},
	}
	cat := core.DefaultCatalog()

	for _, sc := range scenarios {
		tr, err := sc.gen()
		if err != nil {
			t.Fatal(err)
		}
		for _, app := range apps.All() {
			plan, err := app.Wake.Validate(cat)
			if err != nil {
				t.Fatal(err)
			}
			compatible := true
			for _, ch := range plan.Channels {
				if _, ok := tr.Channels[ch]; !ok {
					compatible = false
				}
			}
			if !compatible {
				continue
			}

			f64 := firedBitmap(t, plan, interp.Float64, tr)
			q15 := firedBitmap(t, plan, interp.Q15, tr)
			diff, f64Fired := 0, 0
			for i := range f64 {
				if f64[i] {
					f64Fired++
				}
				if f64[i] != q15[i] {
					diff++
				}
			}
			div := float64(diff) / float64(len(f64))
			t.Logf("%s/%s: %d/%d samples diverge (%.5f%%), float64 fired %d",
				sc.name, app.Name, diff, len(f64), div*100, f64Fired)
			if div > sc.maxDivergence {
				t.Errorf("%s/%s: wake-decision divergence %.5f exceeds pinned ceiling %.5f",
					sc.name, app.Name, div, sc.maxDivergence)
			}
		}
	}
}
