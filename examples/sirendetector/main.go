// Sirendetector: the paper's FFT-heavy audio application. The siren
// wake-up condition (750 Hz high-pass -> FFT -> spectral magnitudes ->
// in-band tonality -> sustained threshold) cannot run in real time on the
// MSP430, so pushing it forces the hub onto the LM4F120 — the asterisk in
// the paper's Table 2. The example shows the automatic device upgrade,
// then replays a synthesized street recording through the hub.
//
// Run with:
//
//	go run ./examples/sirendetector
package main

import (
	"fmt"
	"log"
	"time"

	"sidewinder"
)

func main() {
	// The siren condition, as the Sirens reference application builds it.
	app := sidewinder.Sirens()

	// Show why the MSP430 refuses it: per-device feasibility.
	plan, err := sidewinder.Validate(app.Wake)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("placing the siren wake-up condition:")
	for _, dev := range sidewinder.Devices() {
		if err := dev.CheckFeasible(plan); err != nil {
			fmt.Printf("  %-8s rejected: %v\n", dev.Name, err)
			continue
		}
		fmt.Printf("  %-8s accepted (%.1f mW while monitoring)\n", dev.Name, dev.ActivePowerMW)
	}

	// Push through the full manager/link/hub stack.
	bed, err := sidewinder.NewTestbed(sidewinder.TestbedConfig{})
	if err != nil {
		log.Fatal(err)
	}
	var wakeTimes []time.Duration
	const rate = sidewinder.AudioRateHz
	sampleCount := 0
	_, device, err := bed.Push(app.Wake, sidewinder.ListenerFunc(func(e sidewinder.Event) {
		at := time.Duration(float64(sampleCount) / rate * float64(time.Second))
		wakeTimes = append(wakeTimes, at)
	}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hub selected the %s automatically\n\n", device)

	// A 3-minute outdoor recording with sirens mixed in (paper §4.1).
	fmt.Println("synthesizing 3 minutes of street audio with sirens...")
	cfg := sidewinder.NewAudioConfig(7, 3*time.Minute, "outdoors")
	cfg.SirenFraction = 0.08 // denser sirens so the demo stays short
	trace, err := sidewinder.GenerateAudioTrace(cfg)
	if err != nil {
		log.Fatal(err)
	}
	truth := trace.EventsLabeled("siren")
	fmt.Printf("ground truth: %d siren passes\n", len(truth))

	mic := trace.Channels[sidewinder.Mic]
	lastWake := -1
	wakeGroups := 0
	for i, v := range mic {
		sampleCount = i
		before := len(wakeTimes)
		if err := bed.Feed(sidewinder.Mic, v); err != nil {
			log.Fatal(err)
		}
		if len(wakeTimes) > before {
			// Group rapid refires into one reported detection.
			if lastWake < 0 || i-lastWake > int(3*rate) {
				wakeGroups++
				fmt.Printf("  siren detected at %v\n", wakeTimes[len(wakeTimes)-1].Round(time.Second))
			}
			lastWake = i
		}
	}

	fmt.Printf("\n%d siren detections for %d ground-truth passes "+
		"(the main CPU's classifier would filter any extras after wake-up)\n",
		wakeGroups, len(truth))
}
