// Stepcounter: the paper's Steps application end to end. It generates a
// labeled robot walking trace (paper §4.1), then compares the energy and
// accuracy of running the step detector under four sensing configurations:
// Always Awake, Duty Cycling, the hardwired significant-motion detector,
// and Sidewinder's custom wake-up condition, against the Oracle bound.
//
// Run with:
//
//	go run ./examples/stepcounter
package main

import (
	"fmt"
	"log"
	"time"

	"sidewinder"
)

func main() {
	fmt.Println("generating a 15-minute robot run (50% idle, scripted walking)...")
	trace, err := sidewinder.GenerateRobotTrace(sidewinder.RobotConfig{
		Seed:         42,
		Duration:     15 * time.Minute,
		IdleFraction: 0.5,
	})
	if err != nil {
		log.Fatal(err)
	}
	app := sidewinder.Steps()
	truth := trace.EventsLabeled(app.Label)
	fmt.Printf("trace %q: %d ground-truth steps across %v\n\n",
		trace.Name, len(truth), trace.Duration().Round(time.Second))

	configs := []struct {
		label string
		s     sidewinder.Strategy
	}{
		{"Always Awake", sidewinder.AlwaysAwake{}},
		{"Duty Cycling (10 s)", sidewinder.DutyCycling{SleepSec: 10}},
		{"Predefined Activity", sidewinder.PredefinedActivity{Threshold: 0.24}},
		{"Sidewinder", sidewinder.SidewinderStrategy{}},
		{"Oracle (ideal)", sidewinder.Oracle{}},
	}

	fmt.Printf("%-22s %10s %8s %8s %10s %9s\n",
		"configuration", "power(mW)", "recall", "precis.", "wake-ups", "hub")
	var oracleMW, swMW float64
	for _, cfg := range configs {
		res, err := sidewinder.Simulate(cfg.s, trace, app)
		if err != nil {
			log.Fatal(err)
		}
		hubName := res.Device
		if hubName == "" {
			hubName = "-"
		}
		fmt.Printf("%-22s %10.1f %7.0f%% %7.0f%% %10d %9s\n",
			cfg.label, res.Power.TotalAvgMW, res.Recall*100, res.Precision*100,
			res.Power.WakeUps, hubName)
		switch cfg.label {
		case "Sidewinder":
			swMW = res.Power.TotalAvgMW
		case "Oracle (ideal)":
			oracleMW = res.Power.TotalAvgMW
		}
	}

	share := (323 - swMW) / (323 - oracleMW) * 100
	fmt.Printf("\nSidewinder captured %.1f%% of the savings an ideal wake-up "+
		"mechanism could deliver (paper §5.2 reports 92.7-95.7%%).\n", share)
}
