// Musicjournal: the paper's Music Journal application (§3.7.2). A
// dual-branch wake-up condition — amplitude variance on one branch,
// variance of per-sub-window zero-crossing rates on the other, joined by
// an AND aggregator — wakes the phone when ambient music plays. On each
// wake-up the app logs a journal entry; in the paper the buffered audio
// would then go to a song-identification service.
//
// Run with:
//
//	go run ./examples/musicjournal
package main

import (
	"fmt"
	"log"
	"time"

	"sidewinder"
)

func main() {
	app := sidewinder.MusicJournal()

	// The condition's shape, straight from the compiled IR.
	irText, err := sidewinder.CompileIR(app.Wake)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("music wake-up condition (two branches joined by AND):")
	fmt.Println(irText)

	bed, err := sidewinder.NewTestbed(sidewinder.TestbedConfig{})
	if err != nil {
		log.Fatal(err)
	}

	const rate = sidewinder.AudioRateHz
	type entry struct {
		at       time.Duration
		strength float64
	}
	var journal []entry
	sampleIdx := 0
	_, device, err := bed.Push(app.Wake, sidewinder.ListenerFunc(func(e sidewinder.Event) {
		at := time.Duration(float64(sampleIdx) / rate * float64(time.Second))
		// Coalesce refires within 5 s into one journal entry.
		if len(journal) > 0 && at-journal[len(journal)-1].at < 5*time.Second {
			journal[len(journal)-1].at = at
			return
		}
		journal = append(journal, entry{at: at, strength: e.Value})
	}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("condition runs on the %s (no FFT needed -> the low-power part suffices)\n\n", device)

	fmt.Println("synthesizing a 4-minute coffee-shop recording with songs mixed in...")
	cfg := sidewinder.NewAudioConfig(11, 4*time.Minute, "coffeeshop")
	cfg.MusicFraction = 0.25 // a musical café, to keep the demo lively
	trace, err := sidewinder.GenerateAudioTrace(cfg)
	if err != nil {
		log.Fatal(err)
	}
	songs := trace.EventsLabeled("music")
	fmt.Printf("ground truth: %d songs\n\n", len(songs))

	for i, v := range trace.Channels[sidewinder.Mic] {
		sampleIdx = i
		if err := bed.Feed(sidewinder.Mic, v); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("music journal:")
	for i, e := range journal {
		fmt.Printf("  %2d. music heard around %v\n", i+1, e.at.Round(time.Second))
	}
	fmt.Printf("\n%d journal entries for %d songs; between songs the phone slept at 9.7 mW\n",
		len(journal), len(songs))
}
