// Multiapp: the paper's §7 future-work directions, implemented. Three
// applications push wake-up conditions to one hub:
//
//   - the hub merges common pipeline prefixes, so the two audio apps share
//     their windowing stage ("the sensor manager can attempt to improve
//     performance by combining the pipelines that use common algorithms"),
//   - the set is re-placed on the cheapest feasible device as conditions
//     come and go, and
//   - one application reports false positives, and the hub's self-tuning
//     mechanism tightens its condition ("self-learning mechanisms may be
//     able to tune the parameters used on the wake-up conditions").
//
// Run with:
//
//	go run ./examples/multiapp
package main

import (
	"fmt"
	"log"

	"sidewinder"
)

func main() {
	bed, err := sidewinder.NewTestbed(sidewinder.TestbedConfig{})
	if err != nil {
		log.Fatal(err)
	}

	// Two audio conditions with an identical windowing prefix.
	loudness := sidewinder.NewPipeline("loudness")
	loudness.AddBranch(sidewinder.NewBranch(sidewinder.Mic).
		Add(sidewinder.Window(1024, 0, "rectangular")).
		Add(sidewinder.Stat("variance")).
		Add(sidewinder.MinThreshold(0.02)))

	tone := sidewinder.NewPipeline("tone")
	tone.AddBranch(sidewinder.NewBranch(sidewinder.Mic).
		Add(sidewinder.Window(1024, 0, "rectangular")).
		Add(sidewinder.ZCRVariance(8)).
		Add(sidewinder.BandThreshold(0, 0.002)))

	// One motion condition on a different sensor.
	shake := sidewinder.NewPipeline("shake")
	shake.AddBranch(sidewinder.NewBranch(sidewinder.AccelX).
		Add(sidewinder.MovingAverage(4)).
		Add(sidewinder.MinThreshold(8)))

	var loudFires, toneFires, shakeFires int
	mustPush := func(p *sidewinder.Pipeline, counter *int) uint16 {
		id, device, err := bed.Push(p, sidewinder.ListenerFunc(func(sidewinder.Event) { *counter++ }))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  pushed %-9s -> condition %d on the %s\n", p.Name(), id, device)
		return id
	}

	fmt.Println("loading three applications onto one hub:")
	mustPush(loudness, &loudFires)
	mustPush(tone, &toneFires)
	shakeID := mustPush(shake, &shakeFires)
	fmt.Printf("hub deduplicated %d algorithm instance(s): the shared 1024-sample window runs once\n\n",
		bed.Hub.SharedNodes())

	// Drive the microphone with a loud tone: both audio conditions fire
	// off the same shared window.
	fmt.Println("feeding a loud steady tone to the microphone...")
	for i := 0; i < 1024; i++ {
		v := 0.3
		if i%8 >= 4 { // 250 Hz square-ish wave at 4 kHz intervals
			v = -0.3
		}
		if err := bed.Feed(sidewinder.Mic, v); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("  loudness fired %dx, tone fired %dx (one window computation served both)\n\n",
		loudFires, toneFires)

	// The shake app turns out to be too sensitive: its developer set the
	// threshold at 8, but door slams reach 9. The app reports false
	// positives and the hub tightens the condition.
	fmt.Println("door slams (x ~ 9 m/s²) wake the shake app; it reports false positives...")
	slam := func() int {
		before := shakeFires
		for i := 0; i < 8; i++ {
			if err := bed.Feed(sidewinder.AccelX, 9); err != nil {
				log.Fatal(err)
			}
		}
		for i := 0; i < 8; i++ { // settle
			bed.Feed(sidewinder.AccelX, 0)
		}
		return shakeFires - before
	}
	fmt.Printf("  before tuning: a door slam wakes the phone %d time(s)\n", slam())
	for i := 0; i < 8; i++ {
		if err := bed.Feedback(shakeID, true); err != nil {
			log.Fatal(err)
		}
	}
	factor, _ := bed.Hub.TuningFactor(shakeID)
	fmt.Printf("  hub tightened the threshold by %.0f%% after feedback\n", (factor-1)*100)
	fmt.Printf("  after tuning:  a door slam wakes the phone %d time(s)\n", slam())

	// Real shakes still get through.
	before := shakeFires
	for i := 0; i < 8; i++ {
		bed.Feed(sidewinder.AccelX, 14)
	}
	fmt.Printf("  a real shake (14 m/s²) still fires: %d wake(s)\n", shakeFires-before)
}
