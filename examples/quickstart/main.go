// Quickstart: the paper's significant-motion wake-up condition (Fig. 2)
// built with the public API, compiled to the intermediate language, pushed
// to a simulated phone+hub testbed, and driven with synthetic samples.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"sidewinder"
)

func main() {
	// 1. Build the wake-up condition exactly as in paper Fig. 2a: a
	// moving average per accelerometer axis, merged by vector magnitude,
	// gated by a minimum threshold of 15 m/s².
	pipeline := sidewinder.NewPipeline("significantMotion")
	for _, ch := range []sidewinder.SensorChannel{
		sidewinder.AccelX, sidewinder.AccelY, sidewinder.AccelZ,
	} {
		pipeline.AddBranch(sidewinder.NewBranch(ch).Add(sidewinder.MovingAverage(10)))
	}
	pipeline.Add(sidewinder.VectorMagnitude())
	pipeline.Add(sidewinder.MinThreshold(15))

	// 2. Inspect the intermediate language the sensor manager generates
	// (paper Fig. 2c). This is all the hub ever sees.
	irText, err := sidewinder.CompileIR(pipeline)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Intermediate representation pushed to the hub:")
	fmt.Println(irText)

	// 3. Assemble the phone+hub testbed (simulated UART in between) and
	// push the condition. The hub validates it, places it on the
	// cheapest feasible microcontroller, and starts interpreting.
	bed, err := sidewinder.NewTestbed(sidewinder.TestbedConfig{})
	if err != nil {
		log.Fatal(err)
	}
	wakes := 0
	id, device, err := bed.Push(pipeline, sidewinder.ListenerFunc(func(e sidewinder.Event) {
		wakes++
		// The hub keeps firing while the condition holds; a real
		// application would process the buffer and stay awake, so only
		// the first few wake-ups are interesting to print.
		if wakes <= 3 {
			fmt.Printf("WAKE #%d: condition %d fired with magnitude %.2f m/s² "+
				"(hub delivered %d channels of buffered raw data)\n",
				wakes, e.CondID, e.Value, len(e.Data))
		}
	}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("condition %d placed on the %s\n\n", id, device)

	// 4. Feed sensor samples. While the device rests (gravity only on
	// the z axis) the main processor would stay asleep...
	fmt.Println("feeding 2 seconds of rest...")
	for i := 0; i < 100; i++ {
		feed(bed, 0, 0, 9.81)
	}

	// ...until the device is shaken hard enough that the averaged
	// acceleration magnitude crosses 15 m/s².
	fmt.Println("feeding 1 second of vigorous shaking...")
	for i := 0; i < 50; i++ {
		feed(bed, 12, 10, 14)
	}

	if wakes == 0 {
		log.Fatal("the condition never fired; something is wrong")
	}
	fmt.Printf("\ndone: %d wake emission(s) while shaking; the main processor slept through the rest.\n", wakes)
}

func feed(bed *sidewinder.Testbed, x, y, z float64) {
	must(bed.Feed(sidewinder.AccelX, x))
	must(bed.Feed(sidewinder.AccelY, y))
	must(bed.Feed(sidewinder.AccelZ, z))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
