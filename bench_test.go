package sidewinder_test

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's experiment index). Each experiment benchmark
// runs a reduced-duration version of the corresponding experiment per
// iteration, prints the rendered table once, and reports the headline
// numbers as custom benchmark metrics. The full-scale (paper-duration)
// tables come from `go run ./cmd/sidewinder-eval`, which uses the same
// code with 30-minute/2-hour traces.
//
// Run with:
//
//	go test -bench=. -benchmem

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"sidewinder"
	"sidewinder/internal/apps"
	"sidewinder/internal/core"
	"sidewinder/internal/dsp"
	"sidewinder/internal/eval"
	"sidewinder/internal/interp"
	"sidewinder/internal/parallel"
)

// benchOptions keeps per-iteration work around a few seconds.
func benchOptions() eval.Options {
	return eval.Options{
		Seed:             1,
		RobotRunDuration: 4 * time.Minute,
		AudioDuration:    5 * time.Minute,
		HumanDuration:    20 * time.Minute,
	}
}

var (
	benchWorkloadOnce sync.Once
	benchWorkload     *eval.Workload
	benchWorkloadErr  error
)

func workload(b *testing.B) *eval.Workload {
	b.Helper()
	benchWorkloadOnce.Do(func() {
		benchWorkload, benchWorkloadErr = eval.GenerateWorkload(benchOptions())
	})
	if benchWorkloadErr != nil {
		b.Fatal(benchWorkloadErr)
	}
	return benchWorkload
}

var printOnce sync.Map

// printTable prints a rendered table exactly once per benchmark name.
func printTable(name, rendered string) {
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		fmt.Println(rendered)
	}
}

// BenchmarkTable1PowerProfile regenerates the Nexus 4 power profile
// (paper Table 1) from the power model.
func BenchmarkTable1PowerProfile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb := eval.Table1()
		if i == 0 {
			printTable("table1", tb.Render())
		}
	}
}

// BenchmarkTable2AudioPower regenerates the audio-application power matrix
// (paper Table 2): Oracle vs calibrated Predefined Activity vs Sidewinder.
func BenchmarkTable2AudioPower(b *testing.B) {
	w := workload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eval.Table2(w)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printTable("table2", res.Table.Render())
		}
		b.ReportMetric(res.PowerMW["Sidewinder"]["sirens"], "sw-sirens-mW")
		b.ReportMetric(res.PowerMW["Sidewinder"]["music"], "sw-music-mW")
		b.ReportMetric(res.PowerMW["Sidewinder"]["phrase"], "sw-phrase-mW")
		b.ReportMetric(res.PowerMW["Predefined Activity"]["music"], "pa-mW")
	}
}

// BenchmarkFigure5RobotPower regenerates the robot-trace configuration
// matrix (paper Fig. 5): power relative to Oracle for AA, DC, Batching,
// PA and Sidewinder across the three activity groups.
func BenchmarkFigure5RobotPower(b *testing.B) {
	o := benchOptions()
	w := workload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eval.Figure5(o, w)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, tb := range res.Tables {
				printTable("fig5-"+tb.Title, tb.Render())
			}
		}
		b.ReportMetric(res.Relative["steps"][1]["Sw"], "sw-steps-g1-x")
		b.ReportMetric(res.Relative["headbutts"][1]["Sw"], "sw-headbutts-g1-x")
		b.ReportMetric(res.Relative["headbutts"][1]["PA"], "pa-headbutts-g1-x")
	}
}

// BenchmarkFigure6DutyCycleRecall regenerates duty-cycling recall vs sleep
// interval on the 90%-idle runs (paper Fig. 6).
func BenchmarkFigure6DutyCycleRecall(b *testing.B) {
	o := benchOptions()
	w := workload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eval.Figure6(o, w)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printTable("fig6", res.Table.Render())
		}
		b.ReportMetric(res.Recall["steps"][10]*100, "dc10-steps-recall-%")
		b.ReportMetric(res.Recall["transitions"][10]*100, "dc10-transitions-recall-%")
	}
}

// BenchmarkFigure7HumanPower regenerates the human-trace step-detector
// comparison (paper Fig. 7), with recall measured against Always Awake.
func BenchmarkFigure7HumanPower(b *testing.B) {
	o := benchOptions()
	w := workload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eval.Figure7(o, w)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printTable("fig7", res.Table.Render())
		}
		var minSavings = 1.0
		for _, s := range res.SidewinderSavings {
			if s < minSavings {
				minSavings = s
			}
		}
		b.ReportMetric(minSavings*100, "sw-min-savings-%")
	}
}

// BenchmarkSavingsAnalysis regenerates the §5.1-5.2 headline numbers:
// Sidewinder's share of the savings an ideal wake-up mechanism offers.
func BenchmarkSavingsAnalysis(b *testing.B) {
	o := benchOptions()
	w := workload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eval.Savings(o, w)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printTable("savings", res.Table.Render())
		}
		b.ReportMetric(res.AccelSavings["steps"][1]*100, "steps-g1-%")
		b.ReportMetric(res.AudioSavings["phrase"]*100, "phrase-%")
	}
}

// BenchmarkParallelEval measures the Figure 5 experiment through the
// parallel harness at different worker counts. The rendered tables are
// byte-identical across counts, so the ratio between the sub-benchmarks is
// the harness speedup on this machine.
func BenchmarkParallelEval(b *testing.B) {
	o := benchOptions()
	base := workload(b)
	for _, workers := range []int{1, 0} {
		name := fmt.Sprintf("workers=%d", workers)
		if workers == 0 {
			name = fmt.Sprintf("workers=max(%d)", parallel.DefaultWorkers())
		}
		b.Run(name, func(b *testing.B) {
			w := *base
			w.Workers = workers
			for i := 0; i < b.N; i++ {
				if _, err := eval.Figure5(o, &w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ------------------------------------------------------------ components

// BenchmarkHubInterpreterAccel measures the hub interpreter's throughput
// on the significant-motion condition (samples per second matter: the
// real MCU must keep up with the sensor in real time).
func BenchmarkHubInterpreterAccel(b *testing.B) {
	p := sidewinder.NewPipeline("bench")
	for _, ch := range []sidewinder.SensorChannel{sidewinder.AccelX, sidewinder.AccelY, sidewinder.AccelZ} {
		p.AddBranch(sidewinder.NewBranch(ch).Add(sidewinder.MovingAverage(10)))
	}
	p.Add(sidewinder.VectorMagnitude())
	p.Add(sidewinder.MinThreshold(1e18))
	bed := pushBench(b, p)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bed.Feed(sidewinder.AccelX, 1)
		bed.Feed(sidewinder.AccelY, 1)
		bed.Feed(sidewinder.AccelZ, 1)
	}
}

// BenchmarkHubInterpreterAudio measures the FFT-heavy siren condition.
func BenchmarkHubInterpreterAudio(b *testing.B) {
	bed := pushBench(b, sidewinder.Sirens().Wake)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bed.Feed(sidewinder.Mic, float64(i%7)*0.01)
	}
}

// BenchmarkFFTReal tracks the per-window transform of the audio hot path:
// the one-shot allocating API next to the scratch-carrying variant the
// interpreter uses, which must stay allocation-free in steady state.
func BenchmarkFFTReal(b *testing.B) {
	x := make([]float64, 400)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * float64(i) / 25)
	}
	b.Run("alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := dsp.FFTReal(x); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("into", func(b *testing.B) {
		b.ReportAllocs()
		var spec []complex128
		var err error
		for i := 0; i < b.N; i++ {
			if spec, err = dsp.FFTRealInto(spec, x); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMachinePushSample measures interp.Machine.PushSample on the
// FFT-heavy siren condition without the manager in the loop; steady state
// must stay allocation-free.
func BenchmarkMachinePushSample(b *testing.B) {
	plan, err := apps.Sirens().Wake.Validate(core.DefaultCatalog())
	if err != nil {
		b.Fatal(err)
	}
	m, err := interp.New(plan)
	if err != nil {
		b.Fatal(err)
	}
	ch := plan.Channels[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PushSample(ch, float64(i%7)*0.01)
	}
}

// BenchmarkPushBlock compares per-sample dispatch to block dispatch on the
// FFT-heavy siren condition: both sub-benchmarks run the same 1024-sample
// chunk through the interpreter per iteration, so the ns/op ratio is the
// block path's dispatch win. Steady state must stay allocation-free.
func BenchmarkPushBlock(b *testing.B) {
	plan, err := apps.Sirens().Wake.Validate(core.DefaultCatalog())
	if err != nil {
		b.Fatal(err)
	}
	ch := plan.Channels[0]
	const chunk = 1024
	src := make([]float64, chunk)
	for i := range src {
		src[i] = float64(i%7) * 0.01
	}
	b.Run("sample-loop", func(b *testing.B) {
		m, err := interp.New(plan)
		if err != nil {
			b.Fatal(err)
		}
		for _, v := range src {
			m.PushSample(ch, v) // warm scratch buffers
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, v := range src {
				m.PushSample(ch, v)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*chunk), "ns/sample")
	})
	b.Run("block", func(b *testing.B) {
		m, err := interp.New(plan)
		if err != nil {
			b.Fatal(err)
		}
		m.PushBlock(ch, src) // warm scratch buffers
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.PushBlock(ch, src)
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*chunk), "ns/sample")
	})
}

// BenchmarkFixedPoint compares the float64 and Q15 substrates on the
// step-count accelerometer condition over the block path. Q15 models the
// FPU-less MCU; on this host the interesting number is that it stays in the
// same ballpark while remaining allocation-free.
func BenchmarkFixedPoint(b *testing.B) {
	plan, err := apps.Steps().Wake.Validate(core.DefaultCatalog())
	if err != nil {
		b.Fatal(err)
	}
	const chunk = 1024
	src := make([]float64, chunk)
	for i := range src {
		src[i] = math.Sin(float64(i)/5)*3 + 9.81
	}
	for _, prec := range []interp.Precision{interp.Float64, interp.Q15} {
		b.Run(prec.String(), func(b *testing.B) {
			m, err := interp.NewPrecision(plan, prec)
			if err != nil {
				b.Fatal(err)
			}
			for _, ch := range plan.Channels {
				m.PushBlock(ch, src) // warm scratch buffers
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, ch := range plan.Channels {
					m.PushBlock(ch, src)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*chunk*len(plan.Channels)), "ns/sample")
		})
	}
}

func pushBench(b *testing.B, p *sidewinder.Pipeline) *sidewinder.Testbed {
	b.Helper()
	bed, err := sidewinder.NewTestbed(sidewinder.TestbedConfig{})
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := bed.Push(p, sidewinder.ListenerFunc(func(sidewinder.Event) {})); err != nil {
		b.Fatal(err)
	}
	return bed
}

// BenchmarkIRCompile measures pipeline validation plus IR text generation.
func BenchmarkIRCompile(b *testing.B) {
	app := sidewinder.MusicJournal()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sidewinder.CompileIR(app.Wake); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIRParseBind measures the hub-side parse+bind path.
func BenchmarkIRParseBind(b *testing.B) {
	text, err := sidewinder.CompileIR(sidewinder.Sirens().Wake)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sidewinder.ParseIR(text); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStepDetector measures the main-CPU classifier over one minute
// of walking data.
func BenchmarkStepDetector(b *testing.B) {
	tr, err := sidewinder.GenerateRobotTrace(sidewinder.RobotConfig{
		Seed: 1, Duration: time.Minute, IdleFraction: 0.1,
	})
	if err != nil {
		b.Fatal(err)
	}
	app := sidewinder.Steps()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		app.Detector.Detect(tr, 0, tr.Len())
	}
}

// BenchmarkRobotTraceGeneration measures synthesizing one minute of
// labeled robot accelerometer data.
func BenchmarkRobotTraceGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := sidewinder.GenerateRobotTrace(sidewinder.RobotConfig{
			Seed: int64(i + 1), Duration: time.Minute, IdleFraction: 0.5,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAudioTraceGeneration measures synthesizing one minute of
// labeled audio.
func BenchmarkAudioTraceGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := sidewinder.GenerateAudioTrace(
			sidewinder.NewAudioConfig(int64(i+1), time.Minute, "coffeeshop")); err != nil {
			b.Fatal(err)
		}
	}
}
