package sidewinder

import (
	"sidewinder/internal/apps"
	"sidewinder/internal/eval"
	"sidewinder/internal/sensor"
	"sidewinder/internal/sim"
	"sidewinder/internal/tracegen"
)

// Evaluation surface: traces, reference applications, sensing strategies
// and the experiment harness (paper §3.7, §4, §5).
type (
	// Trace is a multi-channel sensor capture with ground-truth events.
	Trace = sensor.Trace
	// TraceEvent is one labeled ground-truth interval.
	TraceEvent = sensor.Event
	// App is a continuous-sensing application: a main-CPU classifier
	// plus its Sidewinder wake-up condition.
	App = apps.App
	// Detector is a main-CPU classifier.
	Detector = apps.Detector
	// Strategy is one sensing configuration of paper §4.2.
	Strategy = sim.Strategy
	// Result is the outcome of one (strategy, app, trace) simulation.
	Result = sim.Result

	// RobotConfig parameterizes a synthetic robot run.
	RobotConfig = tracegen.RobotConfig
	// HumanConfig parameterizes a synthetic human capture.
	HumanConfig = tracegen.HumanConfig
	// AudioConfig parameterizes a synthetic audio trace.
	AudioConfig = tracegen.AudioConfig

	// EvalOptions parameterizes a full paper-evaluation run.
	EvalOptions = eval.Options
	// EvalWorkload bundles the generated evaluation traces.
	EvalWorkload = eval.Workload
)

// The sensing configurations of paper §4.2.
type (
	// AlwaysAwake never sleeps: the power upper bound.
	AlwaysAwake = sim.AlwaysAwake
	// DutyCycling wakes at fixed intervals to collect 4 s of data.
	DutyCycling = sim.DutyCycling
	// Batching is duty cycling with hub-cached data delivery.
	Batching = sim.Batching
	// PredefinedActivity wakes on hardwired significant motion/sound.
	PredefinedActivity = sim.PredefinedActivity
	// SidewinderStrategy runs the app's wake-up condition on the hub.
	SidewinderStrategy = sim.Sidewinder
	// Oracle is the hypothetical ideal wake-up mechanism.
	Oracle = sim.Oracle
)

// Reference applications (paper §3.7).

// Steps returns the robot/human step counter.
func Steps() *App { return apps.Steps() }

// Transitions returns the sit/stand transition detector.
func Transitions() *App { return apps.Transitions() }

// Headbutts returns the sudden-head-movement (fall-like event) detector.
func Headbutts() *App { return apps.Headbutts() }

// Sirens returns the emergency-vehicle siren detector.
func Sirens() *App { return apps.Sirens() }

// MusicJournal returns the ambient-music detector.
func MusicJournal() *App { return apps.MusicJournal() }

// PhraseDetection returns the spoken-phrase detector.
func PhraseDetection() *App { return apps.PhraseDetection() }

// Apps returns all six reference applications.
func Apps() []*App { return apps.All() }

// Trace generators (paper §4.1).

// GenerateRobotTrace synthesizes one scripted robot run with exact ground
// truth.
func GenerateRobotTrace(cfg RobotConfig) (*Trace, error) { return tracegen.Robot(cfg) }

// GenerateHumanTrace synthesizes a human daily-activity capture.
func GenerateHumanTrace(cfg HumanConfig) (*Trace, error) { return tracegen.Human(cfg) }

// GenerateAudioTrace synthesizes an environment recording with injected
// music, speech and siren events.
func GenerateAudioTrace(cfg AudioConfig) (*Trace, error) { return tracegen.Audio(cfg) }

// NewAudioConfig returns an audio config with the paper's event mix
// (music 5%, speech 5%, sirens 2%, phrases <1%).
var NewAudioConfig = tracegen.NewAudioConfig

// Simulate replays a trace under a sensing strategy for an application and
// reports energy, wake-ups, recall and precision.
func Simulate(s Strategy, tr *Trace, app *App) (*Result, error) { return s.Run(tr, app) }
