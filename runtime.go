package sidewinder

import (
	"sidewinder/internal/hub"
	"sidewinder/internal/manager"
)

// Runtime surface: the sensor manager, the hub node and the devices they
// run on (paper Fig. 1 and §3.4-3.5).
type (
	// Manager is the phone-side SidewinderSensorManager.
	Manager = manager.Manager
	// HubNode is the hub-side runtime: IR binding, device placement,
	// interpretation, wake delivery.
	HubNode = manager.HubNode
	// Testbed couples a Manager and a HubNode over a simulated UART,
	// mirroring the paper's phone+microcontroller prototype.
	Testbed = manager.Testbed
	// TestbedConfig tunes the testbed.
	TestbedConfig = manager.TestbedConfig
	// Event is delivered to listeners on wake-up, with the hub's raw
	// data buffer.
	Event = manager.Event
	// Listener is the paper's SensorEventListener.
	Listener = manager.Listener
	// ListenerFunc adapts a function to Listener.
	ListenerFunc = manager.ListenerFunc
	// Device models a sensor-hub microcontroller.
	Device = hub.Device
)

// NewTestbed builds the full phone+hub assembly over a simulated serial
// link.
func NewTestbed(cfg TestbedConfig) (*Testbed, error) { return manager.NewTestbed(cfg) }

// MSP430 returns the prototype's low-power microcontroller model
// (3.6 mW awake, no FPU).
func MSP430() Device { return hub.MSP430() }

// LM4F120 returns the prototype's Cortex-M4F microcontroller model
// (49.4 mW awake, hardware floating point).
func LM4F120() Device { return hub.LM4F120() }

// Devices returns the prototype's device ladder in increasing power order.
func Devices() []Device { return hub.Devices() }

// SelectDevice returns the lowest-power device able to run all given
// plans concurrently in real time and within RAM (paper §3.8 "Sizing").
func SelectDevice(candidates []Device, plans ...*Plan) (Device, error) {
	return hub.SelectDevice(candidates, plans...)
}
