// Command fleetload replays a seeded fleet population against a running
// sidewinderd over loopback (or any network) and reports sustained
// ingest throughput and latency quantiles.
//
// Usage:
//
//	fleetload -addr 127.0.0.1:7473 -devices 1000 -apps 2 -seed 42
//
// Every device of the population is one concurrent TCP session sending
// its wake events, heartbeats and exact energy split as protocol frames;
// the bye handshake cross-checks the server's per-device totals against
// what the client saw acknowledged, bit for bit. The exit status is
// non-zero on any session error or summary mismatch.
//
// The bitwise check assumes the daemon holds no prior state for the
// population's device IDs (1..devices): replaying into a daemon that
// already ingested those IDs — including a restart from a checkpoint —
// reports every carried-over total as a mismatch. Point repeat runs at a
// fresh daemon.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"sidewinder/internal/fleetd"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7473", "sidewinderd ingest address")
	devices := flag.Int("devices", 1000, "population size (concurrent device sessions)")
	apps := flag.Int("apps", 2, "apps per device")
	seed := flag.Int64("seed", 42, "population seed (same seed, same population)")
	traceSec := flag.Float64("trace-seconds", 10, "sensor trace length per cell")
	window := flag.Int("window", 64, "in-flight unacked frames per device")
	hbEvery := flag.Int("hb-every", 25, "heartbeat per this many wake frames")
	concurrency := flag.Int("concurrency", 0, "max simultaneous sessions (0: whole population)")
	flag.Parse()

	if err := run(*addr, *devices, *apps, *seed, *traceSec, *window, *hbEvery, *concurrency, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fleetload:", err)
		os.Exit(1)
	}
}

func run(addr string, devices, apps int, seed int64, traceSec float64, window, hbEvery, concurrency int, out io.Writer) error {
	buildStart := time.Now()
	res, batchLedger, err := fleetd.BuildPopulation(devices, apps, seed,
		time.Duration(traceSec*float64(time.Second)), 0)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "fleetload: population: %d devices x %d apps (seed %d) built in %.2fs, batch ledger %.6f mJ\n",
		devices, apps, seed, time.Since(buildStart).Seconds(), batchLedger.TotalMJ())

	rep, err := fleetd.RunLoad(fleetd.LoadConfig{
		Addr:           addr,
		Window:         window,
		HeartbeatEvery: hbEvery,
		Concurrency:    concurrency,
	}, res.Cells)
	if rep != nil {
		fmt.Fprintf(out, "fleetload: replayed %d frames from %d devices in %.2fs: %.0f events/s\n",
			rep.Frames, rep.Devices, rep.DurationSec, rep.EventsPerSec)
		fmt.Fprintf(out, "fleetload: latency ms: p50=%.3f p99=%.3f p99.9=%.3f\n",
			rep.P50ms, rep.P99ms, rep.P999ms)
		fmt.Fprintf(out, "fleetload: accepted=%d shed=%d mismatches=%d\n",
			rep.Accepted, rep.Shed, rep.Mismatches)
	}
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "fleetload: summaries verified")
	return nil
}
