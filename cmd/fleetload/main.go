// Command fleetload replays a seeded fleet population against a running
// sidewinderd over loopback (or any network) and reports sustained
// ingest throughput and latency quantiles.
//
// Usage:
//
//	fleetload -addr 127.0.0.1:7473 -devices 1000 -apps 2 -seed 42
//
// Every device of the population is one concurrent TCP session sending
// its wake events, heartbeats and exact energy split as protocol frames;
// the bye handshake cross-checks the server's per-device totals against
// what the client saw acknowledged, bit for bit.
//
// With -reconnect N (the default), sessions open with a resume handshake
// and ride through connection resets, cuts, stalls and partitions: each
// device retries with capped exponential backoff and gives up only after
// N consecutive attempts without progress. The exit status is non-zero
// only on unrecovered devices or summary mismatches — transient
// connection errors that the resume protocol absorbed are reported as
// counts, not failures. -reconnect 0 restores the legacy single-shot
// session where any connection error is fatal for its device.
//
// The bitwise check assumes the daemon holds no prior state for the
// population's device IDs (1..devices): replaying into a daemon that
// already ingested those IDs — including a restart from a checkpoint —
// reports every carried-over total as a mismatch. Point repeat runs at a
// fresh daemon.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"sidewinder/internal/fleetd"
)

// loadOpts carries the flag surface into run.
type loadOpts struct {
	addr        string
	devices     int
	apps        int
	seed        int64
	traceSec    float64
	window      int
	hbEvery     int
	concurrency int
	reconnect   int
	backoffBase time.Duration
	backoffCap  time.Duration
	ackTimeout  time.Duration
	pace        time.Duration
}

func main() {
	var o loadOpts
	flag.StringVar(&o.addr, "addr", "127.0.0.1:7473", "sidewinderd ingest address")
	flag.IntVar(&o.devices, "devices", 1000, "population size (concurrent device sessions)")
	flag.IntVar(&o.apps, "apps", 2, "apps per device")
	flag.Int64Var(&o.seed, "seed", 42, "population seed (same seed, same population)")
	flag.Float64Var(&o.traceSec, "trace-seconds", 10, "sensor trace length per cell")
	flag.IntVar(&o.window, "window", 64, "in-flight unacked frames per device")
	flag.IntVar(&o.hbEvery, "hb-every", 25, "heartbeat per this many wake frames")
	flag.IntVar(&o.concurrency, "concurrency", 0, "max simultaneous sessions (0: whole population)")
	flag.IntVar(&o.reconnect, "reconnect", 8,
		"max consecutive no-progress reconnects per device before giving up (0: legacy single-shot sessions)")
	flag.DurationVar(&o.backoffBase, "backoff-base", 25*time.Millisecond, "initial reconnect backoff")
	flag.DurationVar(&o.backoffCap, "backoff-cap", time.Second, "reconnect backoff ceiling")
	flag.DurationVar(&o.ackTimeout, "ack-timeout", 10*time.Second,
		"per-read/write socket deadline in reconnect mode (a stalled server becomes a reconnect)")
	flag.DurationVar(&o.pace, "pace", 0,
		"per-device delay between frame sends (0: full blast; set to stretch a soak over wall-clock time)")
	flag.Parse()

	if err := run(o, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fleetload:", err)
		os.Exit(1)
	}
}

func run(o loadOpts, out io.Writer) error {
	buildStart := time.Now()
	res, batchLedger, err := fleetd.BuildPopulation(o.devices, o.apps, o.seed,
		time.Duration(o.traceSec*float64(time.Second)), 0)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "fleetload: population: %d devices x %d apps (seed %d) built in %.2fs, batch ledger %.6f mJ\n",
		o.devices, o.apps, o.seed, time.Since(buildStart).Seconds(), batchLedger.TotalMJ())

	rep, err := fleetd.RunLoad(fleetd.LoadConfig{
		Addr:           o.addr,
		Window:         o.window,
		HeartbeatEvery: o.hbEvery,
		Concurrency:    o.concurrency,
		Reconnect:      o.reconnect,
		BackoffBase:    o.backoffBase,
		BackoffCap:     o.backoffCap,
		AckTimeout:     o.ackTimeout,
		Pace:           o.pace,
	}, res.Cells)
	if rep != nil {
		fmt.Fprintf(out, "fleetload: replayed %d frames from %d devices in %.2fs: %.0f events/s\n",
			rep.Frames, rep.Devices, rep.DurationSec, rep.EventsPerSec)
		fmt.Fprintf(out, "fleetload: latency ms: p50=%.3f p99=%.3f p99.9=%.3f\n",
			rep.P50ms, rep.P99ms, rep.P999ms)
		fmt.Fprintf(out, "fleetload: accepted=%d shed=%d mismatches=%d\n",
			rep.Accepted, rep.Shed, rep.Mismatches)
		fmt.Fprintf(out, "fleetload: reconnects=%d resumed=%d dup-acks=%d unrecovered=%d\n",
			rep.Reconnects, rep.Resumed, rep.DupAcks, rep.Unrecovered)
	}
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "fleetload: summaries verified")
	return nil
}
