package main

import (
	"strings"
	"testing"

	"sidewinder/internal/fleetd"
	"sidewinder/internal/telemetry"
)

// TestRunAgainstLiveDaemon boots an in-process fleetd server and replays
// a small population at it end to end.
func TestRunAgainstLiveDaemon(t *testing.T) {
	s, err := fleetd.NewServer(fleetd.Config{
		Addr:      "127.0.0.1:0",
		Telemetry: telemetry.Set{Ledger: telemetry.NewLedger()},
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	if err := s.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer s.Drain()

	var out strings.Builder
	if err := run(s.Addr(), 12, 2, 7, 2, 64, 25, 0, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	text := out.String()
	for _, marker := range []string{"events/s", "latency ms:", "mismatches=0", "fleetload: summaries verified"} {
		if !strings.Contains(text, marker) {
			t.Fatalf("output missing %q:\n%s", marker, text)
		}
	}

	rep, err := s.Drain()
	if err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if !rep.ConservationOK {
		t.Fatalf("daemon ledger does not conserve after replay: err %g mJ", rep.ConservationErrMJ)
	}
	if rep.Devices != 12 {
		t.Fatalf("daemon saw %d devices, want 12", rep.Devices)
	}
}

// TestRunRejectsDeadAddress: no daemon, prompt failure.
func TestRunRejectsDeadAddress(t *testing.T) {
	var out strings.Builder
	if err := run("127.0.0.1:1", 2, 1, 1, 1, 8, 10, 0, &out); err == nil {
		t.Fatal("run against a dead address should fail")
	}
}
