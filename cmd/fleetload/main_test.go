package main

import (
	"strings"
	"testing"
	"time"

	"sidewinder/internal/fleetd"
	"sidewinder/internal/telemetry"
)

func testOpts(addr string) loadOpts {
	return loadOpts{
		addr:        addr,
		devices:     12,
		apps:        2,
		seed:        7,
		traceSec:    2,
		window:      64,
		hbEvery:     25,
		reconnect:   4,
		backoffBase: 5 * time.Millisecond,
		backoffCap:  50 * time.Millisecond,
		ackTimeout:  5 * time.Second,
	}
}

// TestRunAgainstLiveDaemon boots an in-process fleetd server and replays
// a small population at it end to end, in resilient (resume) mode.
func TestRunAgainstLiveDaemon(t *testing.T) {
	s, err := fleetd.NewServer(fleetd.Config{
		Addr:      "127.0.0.1:0",
		Telemetry: telemetry.Set{Ledger: telemetry.NewLedger()},
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	if err := s.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer s.Drain()

	var out strings.Builder
	if err := run(testOpts(s.Addr()), &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	text := out.String()
	for _, marker := range []string{"events/s", "latency ms:", "mismatches=0",
		"unrecovered=0", "fleetload: summaries verified"} {
		if !strings.Contains(text, marker) {
			t.Fatalf("output missing %q:\n%s", marker, text)
		}
	}

	rep, err := s.Drain()
	if err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if !rep.ConservationOK {
		t.Fatalf("daemon ledger does not conserve after replay: err %g mJ", rep.ConservationErrMJ)
	}
	if rep.Devices != 12 {
		t.Fatalf("daemon saw %d devices, want 12", rep.Devices)
	}
}

// TestRunLegacyMode: reconnect 0 keeps the single-shot Hello session
// working against a live daemon.
func TestRunLegacyMode(t *testing.T) {
	s, err := fleetd.NewServer(fleetd.Config{
		Addr:      "127.0.0.1:0",
		Telemetry: telemetry.Set{Ledger: telemetry.NewLedger()},
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	if err := s.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer s.Drain()

	o := testOpts(s.Addr())
	o.devices, o.reconnect = 6, 0
	var out strings.Builder
	if err := run(o, &out); err != nil {
		t.Fatalf("run (legacy): %v\n%s", err, out.String())
	}
}

// TestRunRejectsDeadAddress: no daemon, prompt failure once the
// reconnect budget is exhausted.
func TestRunRejectsDeadAddress(t *testing.T) {
	o := testOpts("127.0.0.1:1")
	o.devices, o.apps, o.traceSec = 2, 1, 1
	o.reconnect = 2
	var out strings.Builder
	if err := run(o, &out); err == nil {
		t.Fatal("run against a dead address should fail")
	}
	if !strings.Contains(out.String(), "unrecovered=2") {
		t.Fatalf("report should count both devices unrecovered:\n%s", out.String())
	}
}
