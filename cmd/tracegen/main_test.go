package main

import (
	"os"
	"path/filepath"
	"testing"

	"sidewinder/internal/sensor"
)

func TestGenerateAllKinds(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name string
		args func(out string) error
	}{
		{"robot.swtr", func(out string) error { return run("robot", 1, 1, 0.5, "", "", out) }},
		{"human.json", func(out string) error { return run("human", 1, 1, 0, "commute", "", out) }},
		{"audio.swtr", func(out string) error { return run("audio", 1, 0.5, 0, "", "coffeeshop", out) }},
	}
	for _, tc := range cases {
		out := filepath.Join(dir, tc.name)
		if err := tc.args(out); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		f, err := os.Open(out)
		if err != nil {
			t.Fatal(err)
		}
		var tr *sensor.Trace
		if filepath.Ext(out) == ".json" {
			tr, err = sensor.ReadJSON(f)
		} else {
			tr, err = sensor.ReadBinary(f)
		}
		f.Close()
		if err != nil {
			t.Fatalf("%s: reading back: %v", tc.name, err)
		}
		if tr.Len() == 0 {
			t.Errorf("%s: empty trace", tc.name)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "x.swtr")
	if err := run("plasma", 1, 1, 0.5, "", "", out); err == nil {
		t.Error("unknown kind should fail")
	}
	if err := run("robot", 1, 1, 0.5, "", "", ""); err == nil {
		t.Error("missing output should fail")
	}
	if err := run("human", 1, 1, 0, "astronaut", "", out); err == nil {
		t.Error("unknown profile should fail")
	}
	if err := run("robot", 1, 1, 0.5, "", "", "/nonexistent/dir/x.swtr"); err == nil {
		t.Error("unwritable path should fail")
	}
}
