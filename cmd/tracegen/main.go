// Command tracegen synthesizes evaluation traces (paper §4.1) and writes
// them to disk in the JSON or binary trace format.
//
// Usage:
//
//	tracegen -kind robot  -idle 0.9 -minutes 30 -seed 1 -o run.swtr
//	tracegen -kind human  -profile commute -minutes 120 -o commute.swtr
//	tracegen -kind audio  -environment coffeeshop -minutes 30 -o cafe.swtr
//
// The output format follows the file extension: .json for JSON, anything
// else for the compact binary format.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sidewinder/internal/sensor"
	"sidewinder/internal/tracegen"
)

func main() {
	kind := flag.String("kind", "robot", "trace kind: robot, human, audio")
	seed := flag.Int64("seed", 1, "generator seed")
	minutes := flag.Float64("minutes", 30, "trace duration in minutes")
	idle := flag.Float64("idle", 0.5, "robot: idle fraction (0.9/0.5/0.1 for paper groups)")
	profile := flag.String("profile", "office", "human: commute, retail, office")
	environment := flag.String("environment", "office", "audio: office, coffeeshop, outdoors")
	out := flag.String("o", "", "output file (required; .json selects JSON)")
	flag.Parse()

	if err := run(*kind, *seed, *minutes, *idle, *profile, *environment, *out); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(kind string, seed int64, minutes, idle float64, profile, environment, out string) error {
	if out == "" {
		return fmt.Errorf("-o output file is required")
	}
	duration := time.Duration(minutes * float64(time.Minute))

	var tr *sensor.Trace
	var err error
	switch kind {
	case "robot":
		tr, err = tracegen.Robot(tracegen.RobotConfig{
			Seed: seed, Duration: duration, IdleFraction: idle,
		})
	case "human":
		tr, err = tracegen.Human(tracegen.HumanConfig{
			Seed: seed, Duration: duration, Profile: tracegen.HumanProfile(profile),
		})
	case "audio":
		tr, err = tracegen.Audio(tracegen.NewAudioConfig(
			seed, duration, tracegen.AudioEnvironment(environment)))
	default:
		return fmt.Errorf("unknown kind %q (want robot, human or audio)", kind)
	}
	if err != nil {
		return err
	}

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(out, ".json") {
		err = tr.WriteJSON(f)
	} else {
		err = tr.WriteBinary(f)
	}
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s: %s, %d samples/channel (%v), %d events, labels %v\n",
		out, tr.Name, tr.Len(), tr.Duration().Round(time.Second), len(tr.Events), tr.Labels())
	return nil
}
