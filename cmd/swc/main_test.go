package main

import (
	"os"
	"path/filepath"
	"testing"
)

const sigJSON = `{
  "name": "significantMotion",
  "branches": [
    {"source": "ACC_X", "stages": [{"kind": "movingAvg", "params": {"size": 10}}]},
    {"source": "ACC_Y", "stages": [{"kind": "movingAvg", "params": {"size": 10}}]},
    {"source": "ACC_Z", "stages": [{"kind": "movingAvg", "params": {"size": 10}}]}
  ],
  "tail": [{"kind": "vectorMagnitude"}, {"kind": "minThreshold", "params": {"min": 15}}]
}`

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompileSpec(t *testing.T) {
	path := writeTemp(t, "sig.json", sigJSON)
	if err := run(false, true, false, true, false, []string{path}); err != nil {
		t.Fatalf("compile: %v", err)
	}
}

func TestCheckIR(t *testing.T) {
	ir := `ACC_X -> movingAvg(id=1, params={10});
1 -> minThreshold(id=2, params={15, 1});
2 -> OUT;
`
	path := writeTemp(t, "prog.ir", ir)
	if err := run(true, false, false, false, false, []string{path}); err != nil {
		t.Fatalf("check: %v", err)
	}
}

func TestCheckRejectsBadIR(t *testing.T) {
	path := writeTemp(t, "bad.ir", "ACC_X -> nonsense(id=1);\n1 -> OUT;\n")
	if err := run(true, false, false, false, false, []string{path}); err == nil {
		t.Fatal("bad IR should fail")
	}
}

func TestCompileRejectsInvalidSpec(t *testing.T) {
	path := writeTemp(t, "bad.json", `{"branches":[{"source":"ACC_X","stages":[{"kind":"movingAvg","params":{"size":0}}]}]}`)
	if err := run(false, false, false, false, false, []string{path}); err == nil {
		t.Fatal("invalid spec should fail")
	}
}

func TestAppsListing(t *testing.T) {
	// The paper's Fig. 3: all six reference conditions render.
	if err := run(false, false, false, false, true, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCatalogListing(t *testing.T) {
	if err := run(false, false, true, false, false, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUsageErrors(t *testing.T) {
	if err := run(false, false, false, false, false, nil); err == nil {
		t.Fatal("missing input should fail")
	}
	if err := run(false, false, false, false, false, []string{"/nonexistent/file.json"}); err == nil {
		t.Fatal("unreadable input should fail")
	}
}
