package main

import (
	"os"
	"path/filepath"
	"testing"
)

const sigJSON = `{
  "name": "significantMotion",
  "branches": [
    {"source": "ACC_X", "stages": [{"kind": "movingAvg", "params": {"size": 10}}]},
    {"source": "ACC_Y", "stages": [{"kind": "movingAvg", "params": {"size": 10}}]},
    {"source": "ACC_Z", "stages": [{"kind": "movingAvg", "params": {"size": 10}}]}
  ],
  "tail": [{"kind": "vectorMagnitude"}, {"kind": "minThreshold", "params": {"min": 15}}]
}`

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// flags bundles run's boolean arguments so each test names only the ones
// it sets.
type flags struct {
	check, report, catalog, graph, apps, optimize, dot bool
}

func runWith(f flags, args []string) error {
	return run(f.check, f.report, f.catalog, f.graph, f.apps, f.optimize, f.dot, args)
}

func TestCompileSpec(t *testing.T) {
	path := writeTemp(t, "sig.json", sigJSON)
	if err := runWith(flags{report: true, graph: true}, []string{path}); err != nil {
		t.Fatalf("compile: %v", err)
	}
}

func TestCompileSpecOptimized(t *testing.T) {
	path := writeTemp(t, "sig.json", sigJSON)
	if err := runWith(flags{optimize: true}, []string{path}); err != nil {
		t.Fatalf("compile -O: %v", err)
	}
}

func TestCompileSpecDot(t *testing.T) {
	path := writeTemp(t, "sig.json", sigJSON)
	if err := runWith(flags{dot: true}, []string{path}); err != nil {
		t.Fatalf("compile -dot: %v", err)
	}
}

func TestCheckIR(t *testing.T) {
	ir := `ACC_X -> movingAvg(id=1, params={10});
1 -> minThreshold(id=2, params={15, 1});
2 -> OUT;
`
	path := writeTemp(t, "prog.ir", ir)
	if err := runWith(flags{check: true}, []string{path}); err != nil {
		t.Fatalf("check: %v", err)
	}
}

func TestCheckIROptimized(t *testing.T) {
	ir := `ACC_X -> movingAvg(id=1, params={10});
1 -> minThreshold(id=2, params={15, 1});
2 -> minThreshold(id=3, params={20, 1});
3 -> OUT;
`
	path := writeTemp(t, "prog.ir", ir)
	if err := runWith(flags{check: true, optimize: true}, []string{path}); err != nil {
		t.Fatalf("check -O: %v", err)
	}
}

func TestCheckRejectsBadIR(t *testing.T) {
	path := writeTemp(t, "bad.ir", "ACC_X -> nonsense(id=1);\n1 -> OUT;\n")
	if err := runWith(flags{check: true}, []string{path}); err == nil {
		t.Fatal("bad IR should fail")
	}
}

func TestCompileRejectsInvalidSpec(t *testing.T) {
	path := writeTemp(t, "bad.json", `{"branches":[{"source":"ACC_X","stages":[{"kind":"movingAvg","params":{"size":0}}]}]}`)
	if err := runWith(flags{}, []string{path}); err == nil {
		t.Fatal("invalid spec should fail")
	}
}

func TestAppsListing(t *testing.T) {
	// The paper's Fig. 3: all six reference conditions render.
	if err := runWith(flags{apps: true}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAppsDot(t *testing.T) {
	// All six reference conditions compiled into one shared DAG.
	if err := runWith(flags{apps: true, dot: true}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCatalogListing(t *testing.T) {
	if err := runWith(flags{catalog: true}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUsageErrors(t *testing.T) {
	if err := runWith(flags{}, nil); err == nil {
		t.Fatal("missing input should fail")
	}
	if err := runWith(flags{}, []string{"/nonexistent/file.json"}); err == nil {
		t.Fatal("unreadable input should fail")
	}
}
