// Command swc is the Sidewinder condition compiler: it turns a JSON
// pipeline spec into the intermediate language the sensor hub executes
// (paper §3.3), validating it against the platform catalog and reporting
// which microcontroller the condition fits on (paper §3.8 "Sizing").
//
// Usage:
//
//	swc condition.json              compile a spec to IR (stdout)
//	swc -check program.ir           parse+bind an existing IR program
//	swc -report condition.json      also print per-device feasibility
//	swc -catalog                    list the platform algorithm catalog
//	swc -O condition.json           optimize through the DAG compile pass
//	swc -dot condition.json         print the DAG as Graphviz dot (stdout)
//	swc -apps -dot                  one shared DAG across all six apps
//
// -O runs the spec through the DAG compile pass (common-subexpression
// elimination, constant folding, threshold fusion) before emitting IR and
// prints the pass statistics to stderr. -dot emits Graphviz instead of IR;
// render with: swc -dot condition.json | dot -Tsvg > condition.svg.
//
// Exit status is non-zero if the condition is invalid or fits no device.
package main

import (
	"flag"
	"fmt"
	"os"

	"sidewinder/internal/apps"
	"sidewinder/internal/core"
	"sidewinder/internal/hub"
	"sidewinder/internal/ir"
	"sidewinder/internal/spec"
)

func main() {
	check := flag.Bool("check", false, "treat the input as IR text and validate it")
	report := flag.Bool("report", false, "print a per-device feasibility report")
	catalog := flag.Bool("catalog", false, "list the platform algorithm catalog and exit")
	graph := flag.Bool("graph", false, "also print the conceptual pipeline graph (paper Fig. 2b) to stderr")
	showApps := flag.Bool("apps", false, "print the six reference applications' wake-up conditions (paper Fig. 3) and exit")
	optimize := flag.Bool("O", false, "run the DAG compile pass (CSE, folding, threshold fusion) before emitting IR; prints pass stats to stderr")
	dot := flag.Bool("dot", false, "print the compiled DAG as Graphviz dot to stdout instead of IR (with -apps: one shared DAG across all apps)")
	flag.Parse()

	if err := run(*check, *report, *catalog, *graph, *showApps, *optimize, *dot, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "swc:", err)
		os.Exit(1)
	}
}

func run(check, report, listCatalog, graph, showApps, optimize, dot bool, args []string) error {
	cat := core.DefaultCatalog()
	if listCatalog {
		printCatalog(cat)
		return nil
	}
	if showApps {
		if dot {
			return printAppsDot(cat)
		}
		return printApps(cat)
	}
	if len(args) != 1 {
		return fmt.Errorf("expected exactly one input file (use -h for usage)")
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}

	var plan *core.Plan
	emitIR := !check
	if check {
		if plan, err = ir.ParseAndBind(string(data), cat); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "OK: %d nodes, channels %v\n", len(plan.Nodes), plan.Channels)
	} else {
		pipeline, err := spec.Parse(data)
		if err != nil {
			return err
		}
		if plan, err = pipeline.Validate(cat); err != nil {
			return err
		}
	}

	if dot {
		// The dot view always goes through the compile pass: the point of
		// the drawing is the deduplicated DAG with shared nodes shaded.
		sp, err := ir.CompilePlans(cat, ir.CompileOptions{}, plan)
		if err != nil {
			return err
		}
		fmt.Print(sp.Dot())
		fmt.Fprintf(os.Stderr, "compile: %s\n", sp.Stats.String())
		return nil
	}
	if optimize {
		compiled, stats, err := ir.CompilePlan(cat, ir.CompileOptions{}, plan)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "compile: %s\n", stats.String())
		plan = compiled
	}
	if emitIR {
		fmt.Print(ir.CompileToText(plan))
	}

	dev, err := hub.SelectDevice(hub.Devices(), plan)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "placement: %s (%.2f%% cycle budget, %d B state)\n",
		dev.Name, dev.Utilization(plan)/dev.MaxUtilization*100, plan.TotalMemory())

	if report {
		printReport(plan)
	}
	if graph {
		fmt.Fprint(os.Stderr, ir.Graph(plan))
	}
	return nil
}

// printAppsDot compiles all six reference applications into one shared
// execution DAG and prints it as Graphviz dot — the cross-app
// common-subgraph picture the capacity scheduler bills from. Render with:
//
//	swc -apps -dot | dot -Tsvg > apps.svg
func printAppsDot(cat *core.Catalog) error {
	var plans []*core.Plan
	for _, app := range apps.All() {
		plan, err := app.Wake.Validate(cat)
		if err != nil {
			return fmt.Errorf("%s: %w", app.Name, err)
		}
		plan.Name = app.Name
		plans = append(plans, plan)
	}
	sp, err := ir.CompilePlans(cat, ir.CompileOptions{}, plans...)
	if err != nil {
		return err
	}
	fmt.Print(sp.Dot())
	fmt.Fprintf(os.Stderr, "compile: %s\n", sp.Stats.String())
	return nil
}

// printApps renders every reference application's wake-up condition as
// its conceptual graph plus IR — the paper's Fig. 3, regenerated from the
// living code.
func printApps(cat *core.Catalog) error {
	for _, app := range apps.All() {
		plan, err := app.Wake.Validate(cat)
		if err != nil {
			return fmt.Errorf("%s: %w", app.Name, err)
		}
		dev, err := hub.SelectDevice(hub.Devices(), plan)
		if err != nil {
			return fmt.Errorf("%s: %w", app.Name, err)
		}
		fmt.Printf("=== %s (detects %q, runs on the %s) ===\n", app.Name, app.Label, dev.Name)
		fmt.Print(ir.Graph(plan))
		fmt.Println()
		fmt.Print(ir.CompileToText(plan))
		fmt.Println()
	}
	return nil
}

func printReport(plan *core.Plan) {
	f, i := plan.TotalOpsPerSecond()
	fmt.Fprintf(os.Stderr, "demand: %.0f float ops/s, %.0f int ops/s\n", f, i)
	for _, d := range hub.Devices() {
		if err := d.CheckFeasible(plan); err != nil {
			fmt.Fprintf(os.Stderr, "  %-8s INFEASIBLE: %v\n", d.Name, err)
			continue
		}
		fmt.Fprintf(os.Stderr, "  %-8s ok: %.2f%% of cycle budget, %.1f mW\n",
			d.Name, d.Utilization(plan)/d.MaxUtilization*100, d.ActivePowerMW)
	}
}

func printCatalog(cat *core.Catalog) {
	fmt.Println("Platform algorithm catalog (paper §3.6):")
	for _, kind := range cat.Kinds() {
		m, err := cat.Get(kind)
		if err != nil {
			continue
		}
		arity := "1 input"
		if m.IsAggregator() {
			if m.MaxInputs < 0 {
				arity = fmt.Sprintf(">=%d inputs", m.MinInputs)
			} else {
				arity = fmt.Sprintf("%d inputs", m.MaxInputs)
			}
		}
		fmt.Printf("  %-18s %s -> %s, %s\n      %s\n", kind, m.In, m.Out, arity, m.Summary)
		for _, p := range m.Params {
			req := "optional"
			if p.Required {
				req = "required"
			}
			if p.Type == core.EnumParam {
				fmt.Printf("      param %s (%s, %s): one of %v\n", p.Name, p.Type, req, p.Enum)
			} else {
				fmt.Printf("      param %s (%s, %s)\n", p.Name, p.Type, req)
			}
		}
	}
}
