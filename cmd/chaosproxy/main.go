// Command chaosproxy is a seeded fault-injecting TCP proxy for chaos
// soaks of the fleet ingest path. Point fleetload at the proxy and the
// proxy at sidewinderd, pick a fault profile and a seed, and every
// connection is subjected to the same reproducible sequence of resets,
// mid-frame cuts, bit corruption, jitter, stalls, and blackhole
// partitions.
//
// Usage:
//
//	chaosproxy -listen 127.0.0.1:7573 -target 127.0.0.1:7473 \
//	    -profile combined -seed 3
//
// The process runs until signalled, then prints a JSON fault report to
// stdout. The exit status is 0 when the proxy ran and shut down cleanly
// — the faults it injects are the job, not an error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"sidewinder/internal/chaosproxy"
	"sidewinder/internal/fleetd"
)

func main() {
	cfg := chaosproxy.Config{}
	var profile string
	flag.StringVar(&cfg.ListenAddr, "listen", "127.0.0.1:7573", "client-facing listen address")
	flag.StringVar(&cfg.TargetAddr, "target", "127.0.0.1:7473", "upstream sidewinderd ingest address")
	flag.StringVar(&profile, "profile", "clean",
		"fault profile: "+strings.Join(chaosproxy.Profiles(), ", "))
	flag.Int64Var(&cfg.Seed, "seed", 1, "fault PRNG seed (same profile+seed, same faults)")
	quiet := flag.Bool("quiet", false, "suppress per-fault log lines")
	flag.Parse()

	if !*quiet {
		logger := log.New(os.Stderr, "chaosproxy: ", log.LstdFlags)
		cfg.Logf = logger.Printf
	}
	d := fleetd.WatchSignals()
	if err := run(cfg, profile, d, os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "chaosproxy:", err)
		os.Exit(1)
	}
}

// run resolves the profile, serves until the drainer fires, and prints
// the fault report. ready, when non-nil, receives the bound address.
func run(cfg chaosproxy.Config, profile string, d *fleetd.Drainer, out io.Writer, ready func(addr string)) error {
	prof, err := chaosproxy.ProfileByName(profile)
	if err != nil {
		return err
	}
	cfg.Profile = prof
	p, err := chaosproxy.New(cfg)
	if err != nil {
		return err
	}
	p.Start()
	fmt.Fprintf(out, "chaosproxy: %s -> %s profile=%s seed=%d\n",
		p.Addr(), cfg.TargetAddr, prof.Name, cfg.Seed)
	if ready != nil {
		ready(p.Addr())
	}

	<-d.C()
	if err := p.Close(); err != nil {
		return err
	}
	report, err := json.Marshal(p.Stats().Snapshot())
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "chaosproxy: report %s\n", report)
	return nil
}
