package main

import (
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"sidewinder/internal/chaosproxy"
	"sidewinder/internal/fleetd"
)

// TestRunProxiesAndReports boots the proxy against an echo listener,
// pushes bytes through the clean profile, drains, and checks the report.
func TestRunProxiesAndReports(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("echo listen: %v", err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() { defer c.Close(); io.Copy(c, c) }()
		}
	}()

	d := fleetd.WatchSignals()
	defer d.Stop()
	addrCh := make(chan string, 1)
	var out strings.Builder
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(1)
	var runErr error
	go func() {
		defer wg.Done()
		mu.Lock()
		defer mu.Unlock()
		runErr = run(chaosproxy.Config{ListenAddr: "127.0.0.1:0", TargetAddr: ln.Addr().String()},
			"clean", d, &out, func(a string) { addrCh <- a })
	}()

	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(5 * time.Second):
		t.Fatal("proxy never became ready")
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial proxy: %v", err)
	}
	if _, err := conn.Write([]byte("ping")); err != nil {
		t.Fatalf("write: %v", err)
	}
	buf := make([]byte, 4)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatalf("read: %v", err)
	}
	if string(buf) != "ping" {
		t.Fatalf("echo through proxy: %q", buf)
	}
	conn.Close()

	d.Request()
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if runErr != nil {
		t.Fatalf("run: %v\n%s", runErr, out.String())
	}
	text := out.String()
	for _, marker := range []string{"profile=clean", "chaosproxy: report", `"conns":1`} {
		if !strings.Contains(text, marker) {
			t.Fatalf("output missing %q:\n%s", marker, text)
		}
	}
}

// TestRunRejectsUnknownProfile fails fast on a bad -profile.
func TestRunRejectsUnknownProfile(t *testing.T) {
	var out strings.Builder
	err := run(chaosproxy.Config{ListenAddr: "127.0.0.1:0", TargetAddr: "127.0.0.1:1"},
		"no-such-profile", nil, &out, nil)
	if err == nil || !strings.Contains(err.Error(), "unknown profile") {
		t.Fatalf("expected unknown-profile error, got %v", err)
	}
}
