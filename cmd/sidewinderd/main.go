// Command sidewinderd is the fleet-scale streaming ingest daemon: it
// fronts thousands of concurrent simulated devices over TCP, maintains a
// sharded device registry and a conserving energy ledger, checkpoints
// periodically, and drains gracefully on SIGINT/SIGTERM — applying every
// acknowledged event before exit.
//
// Usage:
//
//	sidewinderd -addr 127.0.0.1:7473 -http 127.0.0.1:7474 \
//	    -checkpoint fleet.checkpoint -checkpoint-every 10s
//
// The process runs until signalled. The first signal starts the drain
// (stop accepting, apply every queued event, flush the ledger, write the
// final checkpoint); a second signal hard-exits. The exit status is 0
// only when the drain's ledger conservation check passes.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"sidewinder/internal/fleetd"
	"sidewinder/internal/telemetry"
)

func main() {
	cfg := fleetd.Config{}
	flag.StringVar(&cfg.Addr, "addr", "127.0.0.1:7473", "TCP ingest listen address")
	flag.StringVar(&cfg.HTTPAddr, "http", "", "observability endpoint address (empty: disabled)")
	flag.IntVar(&cfg.Shards, "shards", 16, "registry/queue shard count")
	flag.IntVar(&cfg.QueueDepth, "queue-depth", 1024, "per-shard ingest queue depth (full queues shed)")
	flag.IntVar(&cfg.FlushEvery, "flush-every", 64, "energy deposits batched per ledger flush")
	flag.StringVar(&cfg.CheckpointPath, "checkpoint", "", "checkpoint file (empty: no checkpointing)")
	flag.DurationVar(&cfg.CheckpointEvery, "checkpoint-every", 10*time.Second, "periodic checkpoint interval")
	flag.Float64Var(&cfg.ShedWakeCostMJ, "shed-wake-cost", fleetd.DefaultShedWakeCostMJ,
		"fallback energy billed per shed wake event (mJ)")
	flag.DurationVar(&cfg.IdleTimeout, "idle-timeout", fleetd.DefaultIdleTimeout,
		"reap sessions silent for longer than this")
	flag.DurationVar(&cfg.WriteTimeout, "write-timeout", fleetd.DefaultWriteTimeout,
		"per-flush ack write deadline")
	flag.IntVar(&cfg.MaxSessions, "max-sessions", fleetd.DefaultMaxSessions,
		"concurrent session cap (excess connections are rejected)")
	quiet := flag.Bool("quiet", false, "suppress operational log lines")
	flag.Parse()

	if !*quiet {
		logger := log.New(os.Stderr, "", log.LstdFlags)
		cfg.Logf = logger.Printf
	}
	d := fleetd.WatchSignals()
	if err := run(cfg, d, os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "sidewinderd:", err)
		os.Exit(1)
	}
}

// run boots the daemon, waits for a drain request and reports the drain.
// ready, when non-nil, receives the bound ingest address once listening.
func run(cfg fleetd.Config, d *fleetd.Drainer, out io.Writer, ready func(addr string)) error {
	cfg.Telemetry.Metrics = telemetry.NewRegistry()
	cfg.Telemetry.Ledger = telemetry.NewLedger()
	s, err := fleetd.NewServer(cfg)
	if err != nil {
		return err
	}
	if err := s.Start(); err != nil {
		return err
	}
	fmt.Fprintf(out, "sidewinderd: listening on %s (epoch %d)\n", s.Addr(), s.Epoch())
	if s.HTTPAddr() != "" {
		fmt.Fprintf(out, "sidewinderd: metrics on http://%s/metrics\n", s.HTTPAddr())
	}
	if ready != nil {
		ready(s.Addr())
	}

	<-d.C()
	fmt.Fprintln(out, "sidewinderd: drain requested")
	rep, err := s.Drain()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "sidewinderd: drained: devices=%d applied=%d wakes=%d heartbeats=%d sheds=%d\n",
		rep.Devices, rep.Applied, rep.Wakes, rep.Heartbeats, rep.Sheds)
	fmt.Fprintf(out, "sidewinderd: ledger total %.6f mJ, device total %.6f mJ, err %.3g mJ\n",
		rep.LedgerTotalMJ, rep.DeviceTotalMJ, rep.ConservationErrMJ)
	if rep.CheckpointPath != "" {
		fmt.Fprintf(out, "sidewinderd: checkpoint written to %s\n", rep.CheckpointPath)
	}
	if !rep.ConservationOK {
		fmt.Fprintln(out, "sidewinderd: conservation: FAILED")
		return fmt.Errorf("ledger conservation failed: err %g mJ over %g mJ",
			rep.ConservationErrMJ, rep.DeviceTotalMJ)
	}
	fmt.Fprintln(out, "sidewinderd: conservation: OK")
	fmt.Fprintln(out, "sidewinderd: drain: clean")
	return nil
}
