package main

import (
	"net"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"sidewinder/internal/fleetd"
)

// TestRunDrainsCleanOnRequest boots the daemon on an ephemeral port,
// confirms it accepts connections, then requests a drain and checks the
// operator-facing report (the soak script greps these exact markers).
func TestRunDrainsCleanOnRequest(t *testing.T) {
	d := fleetd.WatchSignals(syscall.SIGUSR1) // not SIGTERM: the test harness owns that
	defer d.Stop()
	var out strings.Builder
	addrCh := make(chan string, 1)

	var wg sync.WaitGroup
	var runErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		runErr = run(fleetd.Config{Addr: "127.0.0.1:0"}, d, &out,
			func(addr string) { addrCh <- addr })
	}()

	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("daemon not accepting on %s: %v", addr, err)
	}
	conn.Close()

	d.Request()
	wg.Wait()
	if runErr != nil {
		t.Fatalf("run: %v", runErr)
	}
	text := out.String()
	for _, marker := range []string{
		"sidewinderd: listening on",
		"sidewinderd: drain requested",
		"sidewinderd: conservation: OK",
		"sidewinderd: drain: clean",
	} {
		if !strings.Contains(text, marker) {
			t.Fatalf("output missing %q:\n%s", marker, text)
		}
	}
}

// TestRunRefusesBusyPort: a listen failure must surface as an error, not
// a hang.
func TestRunRefusesBusyPort(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	var out strings.Builder
	if err := run(fleetd.Config{Addr: ln.Addr().String()}, nil, &out, nil); err == nil {
		t.Fatal("run on a busy port should fail")
	}
}
