// Command hubemu runs the sensor-hub runtime standalone: it loads an
// intermediate-language program (paper §3.3), binds it against the
// platform catalog, replays a trace file through the interpreter and
// reports every wake-up plus cycle-budget statistics. It is the software
// equivalent of flashing the paper's MSP430/LM4F120 firmware and feeding
// it recorded sensor data.
//
// Usage:
//
//	hubemu -ir condition.ir -trace run.swtr [-device MSP430|LM4F120] [-v]
//	       [-metrics FILE] [-traceout FILE] [-crash-profile SPEC]
//
// -crash-profile injects hub failures during the replay, the firmware
// analogue of yanking the MCU's power mid-run. SPEC is comma-separated
// key=value pairs: mtbf=TICKS (mean ticks between crashes, required),
// down=TICKS (mean outage length), max=TICKS (outage cap), seed=N, and
// kind=reset|hang|brownout to force one failure kind (default: equal
// mix). Ticks are trace samples. While down the hub drops its input;
// a state-losing crash (reset/brownout) additionally wipes the
// interpreter, so buffered window state is lost across the reboot.
//
// -metrics writes replay telemetry (wake counters, per-stage interpreter
// work, the device's energy ledger) to FILE — JSON when FILE ends in
// .json, aligned text otherwise. -traceout writes a Chrome trace_event
// JSON execution trace (wake instants plus per-stage spans) loadable in
// Perfetto; it is named -traceout because -trace already names the input
// sensor trace. Both are opt-in and leave the replay output unchanged.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"sidewinder/internal/core"
	"sidewinder/internal/fleetd"
	"sidewinder/internal/hub"
	"sidewinder/internal/interp"
	"sidewinder/internal/ir"
	"sidewinder/internal/resilience"
	"sidewinder/internal/sensor"
	"sidewinder/internal/telemetry"
)

func main() {
	irPath := flag.String("ir", "", "intermediate-language program file (required)")
	tracePath := flag.String("trace", "", "trace file, binary or .json (required)")
	deviceName := flag.String("device", "", "force a device (MSP430 or LM4F120); default: auto-select")
	verbose := flag.Bool("v", false, "print every wake event and the per-stage static demand breakdown")
	metricsFile := flag.String("metrics", "", "write wake counters and the energy ledger to this file (.json for JSON)")
	traceOutFile := flag.String("traceout", "", "write a Chrome trace_event JSON trace to this file (open in Perfetto)")
	crashSpec := flag.String("crash-profile", "",
		`inject hub crashes: "mtbf=3000,down=250,seed=1[,max=N][,kind=reset|hang|brownout]" (ticks = samples)`)
	precision := flag.String("precision", "float64",
		"interpreter numeric substrate: float64 or q15 (saturating fixed-point)")
	flag.Parse()

	// SIGINT/SIGTERM request a graceful stop: the replay breaks at the
	// next sample, then flushes -metrics/-traceout like a completed run
	// instead of dying mid-frame. A second signal hard-exits.
	d := fleetd.WatchSignals()
	defer d.Stop()
	if err := run(*irPath, *tracePath, *deviceName, *verbose, *metricsFile, *traceOutFile, *crashSpec, *precision, d); err != nil {
		fmt.Fprintln(os.Stderr, "hubemu:", err)
		os.Exit(1)
	}
}

func run(irPath, tracePath, deviceName string, verbose bool, metricsFile, traceOutFile, crashSpec, precision string, d *fleetd.Drainer) error {
	if irPath == "" || tracePath == "" {
		return fmt.Errorf("-ir and -trace are required")
	}
	crashProfile, err := parseCrashProfile(crashSpec)
	if err != nil {
		return err
	}
	prec, err := interp.ParsePrecision(precision)
	if err != nil {
		return err
	}
	irText, err := os.ReadFile(irPath)
	if err != nil {
		return err
	}
	plan, err := ir.ParseAndBind(string(irText), core.DefaultCatalog())
	if err != nil {
		return err
	}

	f, err := os.Open(tracePath)
	if err != nil {
		return err
	}
	defer f.Close()
	var tr *sensor.Trace
	if strings.HasSuffix(tracePath, ".json") {
		tr, err = sensor.ReadJSON(f)
	} else {
		tr, err = sensor.ReadBinary(f)
	}
	if err != nil {
		return err
	}

	dev, err := pickDevice(deviceName, plan)
	if err != nil {
		return err
	}
	fmt.Printf("condition %q: %d nodes on %s (%.2f%% cycle budget)\n",
		plan.Name, len(plan.Nodes), dev.Name, dev.Utilization(plan)/dev.MaxUtilization*100)
	if verbose {
		printStaticDemand(plan, dev)
	}

	machine, err := interp.NewPrecision(plan, prec)
	if err != nil {
		return err
	}
	if prec != interp.Float64 {
		fmt.Printf("precision: %s\n", prec)
	}

	// Opt-in telemetry: counters + ledger behind -metrics, execution trace
	// behind -traceout. All handles are nil-safe, so the replay loop below
	// is identical with and without them.
	var set telemetry.Set
	if metricsFile != "" {
		set.Metrics = telemetry.NewRegistry()
		set.Ledger = telemetry.NewLedger()
	}
	if traceOutFile != "" {
		set.Tracer = telemetry.NewTracer()
	}
	var (
		clk     *telemetry.Clock
		stream  *telemetry.Stream
		profile *telemetry.InterpProfile
		cWakes  *telemetry.Counter
	)
	if set.Enabled() {
		clk = &telemetry.Clock{}
		stream = set.Tracer.Stream("hub", clk)
		profile = telemetry.NewInterpProfile()
		machine.SetProfile(profile)
		cWakes = set.Metrics.Counter("hubemu.wakes")
	}

	channels := plan.Channels
	for _, ch := range channels {
		if _, ok := tr.Channels[ch]; !ok {
			return fmt.Errorf("trace %q lacks channel %s required by the condition", tr.Name, ch)
		}
	}

	inj, err := resilience.NewCrashInjector(crashProfile)
	if err != nil {
		return err
	}

	wakes, samplesLost, stateWipes := 0, 0, 0
	n := tr.Len()
	processed := n // samples actually replayed; fewer if interrupted

	interruptNote := func() {
		fmt.Printf("interrupted at sample %d of %d: flushing telemetry\n", processed, n)
	}

	reportWake := func(i int, w interp.WakeEvent) {
		wakes++
		cWakes.Inc()
		stream.Instant2("wake.sent", "hub", "node", float64(w.NodeID), "value", w.Value)
		if verbose {
			at := time.Duration(float64(i) / tr.RateHz * float64(time.Second))
			fmt.Printf("wake #%d at %v (sample %d): node %d emitted %.4g\n",
				wakes, at.Round(time.Millisecond), i, w.NodeID, w.Value)
		}
	}

	// Single-channel replay with no fault injection takes the interpreter's
	// block fast path; crash injection needs the per-sample loop so state
	// wipes land mid-stream, and multi-channel replay needs the per-sample
	// interleave.
	if !crashProfile.Enabled() && len(channels) == 1 {
		ch := channels[0]
		samples := tr.Channels[ch]
		const replayBlock = 4096
		for base := 0; base < n; base += replayBlock {
			if d.Requested() {
				processed = base
				interruptNote()
				break
			}
			end := base + replayBlock
			if end > n {
				end = n
			}
			for _, w := range machine.PushBlock(ch, samples[base:end]) {
				clk.SetSec(float64(base+w.Off) / tr.RateHz)
				reportWake(base+w.Off, w.WakeEvent)
			}
		}
		return finishRun(tr, dev, machine, inj, crashProfile, set, stream, profile,
			metricsFile, traceOutFile, wakes, samplesLost, stateWipes, processed)
	}

	for i := 0; i < n; i++ {
		if d.Requested() {
			processed = i
			interruptNote()
			break
		}
		clk.SetSec(float64(i) / tr.RateHz)
		if ct := inj.Tick(); ct.Onset && ct.Kind.LosesState() {
			// A reset or brownout reboots the MCU: the interpreter's
			// buffered window state does not survive. The work meter does —
			// cycles already spent were really spent.
			machine.Reset()
			stateWipes++
			if verbose {
				fmt.Printf("crash (%s) at sample %d: interpreter state wiped\n", ct.Kind, i)
			}
		} else if verbose && ct.Onset {
			fmt.Printf("crash (%s) at sample %d\n", ct.Kind, i)
		}
		if inj.Down() {
			samplesLost += len(channels)
			continue
		}
		for _, ch := range channels {
			for _, w := range machine.PushSample(ch, tr.Channels[ch][i]) {
				reportWake(i, w)
			}
		}
	}
	return finishRun(tr, dev, machine, inj, crashProfile, set, stream, profile,
		metricsFile, traceOutFile, wakes, samplesLost, stateWipes, processed)
}

// finishRun prints the replay report and exports opt-in telemetry.
func finishRun(tr *sensor.Trace, dev hub.Device, machine *interp.Machine,
	inj *resilience.CrashInjector, crashProfile resilience.CrashProfile,
	set telemetry.Set, stream *telemetry.Stream, profile *telemetry.InterpProfile,
	metricsFile, traceOutFile string, wakes, samplesLost, stateWipes, n int) error {
	work := machine.Work()
	cycles := work.FloatOps*dev.CyclesPerFloatOp + work.IntOps*dev.CyclesPerIntOp
	seconds := float64(n) / tr.RateHz
	wakesPerMin, budgetPct := 0.0, 0.0
	if seconds > 0 {
		wakesPerMin = float64(wakes) / (seconds / 60)
		budgetPct = cycles / seconds / (dev.ClockHz * dev.MaxUtilization) * 100
	}
	fmt.Printf("replayed %s: %d samples/channel over %v\n", tr.Name, n, tr.Duration().Round(time.Second))
	fmt.Printf("wake-ups: %d (%.2f per minute)\n", wakes, wakesPerMin)
	fmt.Printf("interpreter work: %.0f float ops, %.0f int ops (%.2f%% of %s cycle budget)\n",
		work.FloatOps, work.IntOps, budgetPct, dev.Name)
	if crashProfile.Enabled() {
		st := inj.Stats()
		fmt.Printf("crashes: %d (%d reset, %d hang, %d brownout); down %d of %d samples; %d samples dropped; %d state wipes\n",
			st.Crashes, st.Resets, st.Hangs, st.Brownouts, st.DownTicks, n, samplesLost, stateWipes)
	}

	if set.Enabled() {
		if led := set.LedgerSink(); led != nil {
			led.AddEnergyMJ(telemetry.HubDevice, dev.ActivePowerMW*seconds)
			profile.DepositCycles(led, dev.CyclesPerFloatOp, dev.CyclesPerIntOp)
		}
		// Per-stage execution spans: consecutive spans whose durations are
		// the stages' cycle counts on this device's clock.
		at := 0.0
		for _, st := range profile.Stages() {
			stageCycles := st.FloatOps*dev.CyclesPerFloatOp + st.IntOps*dev.CyclesPerIntOp
			if dur := stageCycles / dev.ClockHz; dur > 0 {
				stream.Span(st.Kind, "stage", at, dur)
				at += dur
			}
		}
		if err := writeTelemetry(set, metricsFile, traceOutFile); err != nil {
			return err
		}
	}
	return nil
}

// printStaticDemand reports the condition's per-stage static demand — the
// numbers the capacity scheduler admits against — as cycles on the chosen
// device and resident window memory.
func printStaticDemand(plan *core.Plan, dev hub.Device) {
	stages := interp.MergedDemandByStage(plan)
	fmt.Println("static demand by stage (admission-controller view):")
	var totalCycles float64
	var totalMem int
	for _, sd := range stages {
		cycles := sd.FloatOpsPerSec*dev.CyclesPerFloatOp + sd.IntOpsPerSec*dev.CyclesPerIntOp
		totalCycles += cycles
		totalMem += sd.MemoryBytes
		fmt.Printf("  %-16s x%d  %10.0f cycles/s  %6d B\n", sd.Kind, sd.Nodes, cycles, sd.MemoryBytes)
	}
	fmt.Printf("  %-16s     %10.0f cycles/s  %6d B  (budget %.0f cycles/s, %d B)\n",
		"total", totalCycles, totalMem, dev.ClockHz*dev.MaxUtilization, dev.RAMBytes)
}

// writeTelemetry exports the collected sinks: the metrics file carries the
// registry and ledger (one JSON object for .json names, aligned text
// otherwise); the trace file is Chrome trace_event JSON.
func writeTelemetry(set telemetry.Set, metricsFile, traceFile string) error {
	if metricsFile != "" {
		f, err := os.Create(metricsFile)
		if err != nil {
			return err
		}
		if strings.HasSuffix(metricsFile, ".json") {
			_, err = io.WriteString(f, `{"metrics":`)
			if err == nil {
				err = set.Metrics.WriteJSON(f)
			}
			if err == nil {
				_, err = io.WriteString(f, `,"ledger":`)
			}
			if err == nil {
				err = set.Ledger.WriteJSON(f)
			}
			if err == nil {
				_, err = io.WriteString(f, "}\n")
			}
		} else {
			err = set.Metrics.WriteText(f)
			if err == nil {
				_, err = io.WriteString(f, "\n")
			}
			if err == nil {
				err = set.Ledger.WriteText(f)
			}
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("writing metrics: %w", err)
		}
	}
	if traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			return err
		}
		err = set.Tracer.WriteJSON(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("writing trace: %w", err)
		}
	}
	return nil
}

// parseCrashProfile parses the -crash-profile spec: comma-separated
// key=value pairs with keys mtbf, down, max, seed and kind. An empty spec
// yields a disabled profile (and a nil, no-op injector).
func parseCrashProfile(spec string) (resilience.CrashProfile, error) {
	var p resilience.CrashProfile
	if spec == "" {
		return p, nil
	}
	for _, field := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return p, fmt.Errorf("-crash-profile: %q is not key=value", field)
		}
		var err error
		switch key {
		case "mtbf":
			_, err = fmt.Sscanf(val, "%g", &p.MTBFTicks)
		case "down":
			_, err = fmt.Sscanf(val, "%g", &p.MeanDownTicks)
		case "max":
			_, err = fmt.Sscanf(val, "%d", &p.MaxDownTicks)
		case "seed":
			_, err = fmt.Sscanf(val, "%d", &p.Seed)
		case "kind":
			switch val {
			case "reset":
				p.ResetWeight = 1
			case "hang":
				p.HangWeight = 1
			case "brownout":
				p.BrownoutWeight = 1
			default:
				return p, fmt.Errorf("-crash-profile: unknown kind %q (reset, hang or brownout)", val)
			}
		default:
			return p, fmt.Errorf("-crash-profile: unknown key %q (mtbf, down, max, seed, kind)", key)
		}
		if err != nil {
			return p, fmt.Errorf("-crash-profile: bad value for %s: %q", key, val)
		}
	}
	if !p.Enabled() {
		return p, fmt.Errorf("-crash-profile: mtbf must be set and positive")
	}
	return p, p.Validate()
}

func pickDevice(name string, plan *core.Plan) (hub.Device, error) {
	if name == "" {
		return hub.SelectDevice(hub.Devices(), plan)
	}
	for _, d := range hub.Devices() {
		if strings.EqualFold(d.Name, name) {
			if err := d.CheckFeasible(plan); err != nil {
				return hub.Device{}, err
			}
			return d, nil
		}
	}
	return hub.Device{}, fmt.Errorf("unknown device %q", name)
}
