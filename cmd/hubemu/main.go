// Command hubemu runs the sensor-hub runtime standalone: it loads an
// intermediate-language program (paper §3.3), binds it against the
// platform catalog, replays a trace file through the interpreter and
// reports every wake-up plus cycle-budget statistics. It is the software
// equivalent of flashing the paper's MSP430/LM4F120 firmware and feeding
// it recorded sensor data.
//
// Usage:
//
//	hubemu -ir condition.ir -trace run.swtr [-device MSP430|LM4F120] [-v]
//	       [-metrics FILE] [-traceout FILE]
//
// -metrics writes replay telemetry (wake counters, per-stage interpreter
// work, the device's energy ledger) to FILE — JSON when FILE ends in
// .json, aligned text otherwise. -traceout writes a Chrome trace_event
// JSON execution trace (wake instants plus per-stage spans) loadable in
// Perfetto; it is named -traceout because -trace already names the input
// sensor trace. Both are opt-in and leave the replay output unchanged.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"sidewinder/internal/core"
	"sidewinder/internal/hub"
	"sidewinder/internal/interp"
	"sidewinder/internal/ir"
	"sidewinder/internal/sensor"
	"sidewinder/internal/telemetry"
)

func main() {
	irPath := flag.String("ir", "", "intermediate-language program file (required)")
	tracePath := flag.String("trace", "", "trace file, binary or .json (required)")
	deviceName := flag.String("device", "", "force a device (MSP430 or LM4F120); default: auto-select")
	verbose := flag.Bool("v", false, "print every wake event")
	metricsFile := flag.String("metrics", "", "write wake counters and the energy ledger to this file (.json for JSON)")
	traceOutFile := flag.String("traceout", "", "write a Chrome trace_event JSON trace to this file (open in Perfetto)")
	flag.Parse()

	if err := run(*irPath, *tracePath, *deviceName, *verbose, *metricsFile, *traceOutFile); err != nil {
		fmt.Fprintln(os.Stderr, "hubemu:", err)
		os.Exit(1)
	}
}

func run(irPath, tracePath, deviceName string, verbose bool, metricsFile, traceOutFile string) error {
	if irPath == "" || tracePath == "" {
		return fmt.Errorf("-ir and -trace are required")
	}
	irText, err := os.ReadFile(irPath)
	if err != nil {
		return err
	}
	plan, err := ir.ParseAndBind(string(irText), core.DefaultCatalog())
	if err != nil {
		return err
	}

	f, err := os.Open(tracePath)
	if err != nil {
		return err
	}
	defer f.Close()
	var tr *sensor.Trace
	if strings.HasSuffix(tracePath, ".json") {
		tr, err = sensor.ReadJSON(f)
	} else {
		tr, err = sensor.ReadBinary(f)
	}
	if err != nil {
		return err
	}

	dev, err := pickDevice(deviceName, plan)
	if err != nil {
		return err
	}
	fmt.Printf("condition %q: %d nodes on %s (%.2f%% cycle budget)\n",
		plan.Name, len(plan.Nodes), dev.Name, dev.Utilization(plan)/dev.MaxUtilization*100)

	machine, err := interp.New(plan)
	if err != nil {
		return err
	}

	// Opt-in telemetry: counters + ledger behind -metrics, execution trace
	// behind -traceout. All handles are nil-safe, so the replay loop below
	// is identical with and without them.
	var set telemetry.Set
	if metricsFile != "" {
		set.Metrics = telemetry.NewRegistry()
		set.Ledger = telemetry.NewLedger()
	}
	if traceOutFile != "" {
		set.Tracer = telemetry.NewTracer()
	}
	var (
		clk     *telemetry.Clock
		stream  *telemetry.Stream
		profile *telemetry.InterpProfile
		cWakes  *telemetry.Counter
	)
	if set.Enabled() {
		clk = &telemetry.Clock{}
		stream = set.Tracer.Stream("hub", clk)
		profile = telemetry.NewInterpProfile()
		machine.SetProfile(profile)
		cWakes = set.Metrics.Counter("hubemu.wakes")
	}

	channels := plan.Channels
	for _, ch := range channels {
		if _, ok := tr.Channels[ch]; !ok {
			return fmt.Errorf("trace %q lacks channel %s required by the condition", tr.Name, ch)
		}
	}

	wakes := 0
	n := tr.Len()
	for i := 0; i < n; i++ {
		clk.SetSec(float64(i) / tr.RateHz)
		for _, ch := range channels {
			for _, w := range machine.PushSample(ch, tr.Channels[ch][i]) {
				wakes++
				cWakes.Inc()
				stream.Instant2("wake.sent", "hub", "node", float64(w.NodeID), "value", w.Value)
				if verbose {
					at := time.Duration(float64(i) / tr.RateHz * float64(time.Second))
					fmt.Printf("wake #%d at %v (sample %d): node %d emitted %.4g\n",
						wakes, at.Round(time.Millisecond), i, w.NodeID, w.Value)
				}
			}
		}
	}

	work := machine.Work()
	cycles := work.FloatOps*dev.CyclesPerFloatOp + work.IntOps*dev.CyclesPerIntOp
	seconds := float64(n) / tr.RateHz
	fmt.Printf("replayed %s: %d samples/channel over %v\n", tr.Name, n, tr.Duration().Round(time.Second))
	fmt.Printf("wake-ups: %d (%.2f per minute)\n", wakes, float64(wakes)/(seconds/60))
	fmt.Printf("interpreter work: %.0f float ops, %.0f int ops (%.2f%% of %s cycle budget)\n",
		work.FloatOps, work.IntOps, cycles/seconds/(dev.ClockHz*dev.MaxUtilization)*100, dev.Name)

	if set.Enabled() {
		if led := set.LedgerSink(); led != nil {
			led.AddEnergyMJ(telemetry.HubDevice, dev.ActivePowerMW*seconds)
			profile.DepositCycles(led, dev.CyclesPerFloatOp, dev.CyclesPerIntOp)
		}
		// Per-stage execution spans: consecutive spans whose durations are
		// the stages' cycle counts on this device's clock.
		at := 0.0
		for _, st := range profile.Stages() {
			stageCycles := st.FloatOps*dev.CyclesPerFloatOp + st.IntOps*dev.CyclesPerIntOp
			if dur := stageCycles / dev.ClockHz; dur > 0 {
				stream.Span(st.Kind, "stage", at, dur)
				at += dur
			}
		}
		if err := writeTelemetry(set, metricsFile, traceOutFile); err != nil {
			return err
		}
	}
	return nil
}

// writeTelemetry exports the collected sinks: the metrics file carries the
// registry and ledger (one JSON object for .json names, aligned text
// otherwise); the trace file is Chrome trace_event JSON.
func writeTelemetry(set telemetry.Set, metricsFile, traceFile string) error {
	if metricsFile != "" {
		f, err := os.Create(metricsFile)
		if err != nil {
			return err
		}
		if strings.HasSuffix(metricsFile, ".json") {
			_, err = io.WriteString(f, `{"metrics":`)
			if err == nil {
				err = set.Metrics.WriteJSON(f)
			}
			if err == nil {
				_, err = io.WriteString(f, `,"ledger":`)
			}
			if err == nil {
				err = set.Ledger.WriteJSON(f)
			}
			if err == nil {
				_, err = io.WriteString(f, "}\n")
			}
		} else {
			err = set.Metrics.WriteText(f)
			if err == nil {
				_, err = io.WriteString(f, "\n")
			}
			if err == nil {
				err = set.Ledger.WriteText(f)
			}
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("writing metrics: %w", err)
		}
	}
	if traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			return err
		}
		err = set.Tracer.WriteJSON(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("writing trace: %w", err)
		}
	}
	return nil
}

func pickDevice(name string, plan *core.Plan) (hub.Device, error) {
	if name == "" {
		return hub.SelectDevice(hub.Devices(), plan)
	}
	for _, d := range hub.Devices() {
		if strings.EqualFold(d.Name, name) {
			if err := d.CheckFeasible(plan); err != nil {
				return hub.Device{}, err
			}
			return d, nil
		}
	}
	return hub.Device{}, fmt.Errorf("unknown device %q", name)
}
