// Command hubemu runs the sensor-hub runtime standalone: it loads an
// intermediate-language program (paper §3.3), binds it against the
// platform catalog, replays a trace file through the interpreter and
// reports every wake-up plus cycle-budget statistics. It is the software
// equivalent of flashing the paper's MSP430/LM4F120 firmware and feeding
// it recorded sensor data.
//
// Usage:
//
//	hubemu -ir condition.ir -trace run.swtr [-device MSP430|LM4F120] [-v]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sidewinder/internal/core"
	"sidewinder/internal/hub"
	"sidewinder/internal/interp"
	"sidewinder/internal/ir"
	"sidewinder/internal/sensor"
)

func main() {
	irPath := flag.String("ir", "", "intermediate-language program file (required)")
	tracePath := flag.String("trace", "", "trace file, binary or .json (required)")
	deviceName := flag.String("device", "", "force a device (MSP430 or LM4F120); default: auto-select")
	verbose := flag.Bool("v", false, "print every wake event")
	flag.Parse()

	if err := run(*irPath, *tracePath, *deviceName, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "hubemu:", err)
		os.Exit(1)
	}
}

func run(irPath, tracePath, deviceName string, verbose bool) error {
	if irPath == "" || tracePath == "" {
		return fmt.Errorf("-ir and -trace are required")
	}
	irText, err := os.ReadFile(irPath)
	if err != nil {
		return err
	}
	plan, err := ir.ParseAndBind(string(irText), core.DefaultCatalog())
	if err != nil {
		return err
	}

	f, err := os.Open(tracePath)
	if err != nil {
		return err
	}
	defer f.Close()
	var tr *sensor.Trace
	if strings.HasSuffix(tracePath, ".json") {
		tr, err = sensor.ReadJSON(f)
	} else {
		tr, err = sensor.ReadBinary(f)
	}
	if err != nil {
		return err
	}

	dev, err := pickDevice(deviceName, plan)
	if err != nil {
		return err
	}
	fmt.Printf("condition %q: %d nodes on %s (%.2f%% cycle budget)\n",
		plan.Name, len(plan.Nodes), dev.Name, dev.Utilization(plan)/dev.MaxUtilization*100)

	machine, err := interp.New(plan)
	if err != nil {
		return err
	}
	channels := plan.Channels
	for _, ch := range channels {
		if _, ok := tr.Channels[ch]; !ok {
			return fmt.Errorf("trace %q lacks channel %s required by the condition", tr.Name, ch)
		}
	}

	wakes := 0
	n := tr.Len()
	for i := 0; i < n; i++ {
		for _, ch := range channels {
			for _, w := range machine.PushSample(ch, tr.Channels[ch][i]) {
				wakes++
				if verbose {
					at := time.Duration(float64(i) / tr.RateHz * float64(time.Second))
					fmt.Printf("wake #%d at %v (sample %d): node %d emitted %.4g\n",
						wakes, at.Round(time.Millisecond), i, w.NodeID, w.Value)
				}
			}
		}
	}

	work := machine.Work()
	cycles := work.FloatOps*dev.CyclesPerFloatOp + work.IntOps*dev.CyclesPerIntOp
	seconds := float64(n) / tr.RateHz
	fmt.Printf("replayed %s: %d samples/channel over %v\n", tr.Name, n, tr.Duration().Round(time.Second))
	fmt.Printf("wake-ups: %d (%.2f per minute)\n", wakes, float64(wakes)/(seconds/60))
	fmt.Printf("interpreter work: %.0f float ops, %.0f int ops (%.2f%% of %s cycle budget)\n",
		work.FloatOps, work.IntOps, cycles/seconds/(dev.ClockHz*dev.MaxUtilization)*100, dev.Name)
	return nil
}

func pickDevice(name string, plan *core.Plan) (hub.Device, error) {
	if name == "" {
		return hub.SelectDevice(hub.Devices(), plan)
	}
	for _, d := range hub.Devices() {
		if strings.EqualFold(d.Name, name) {
			if err := d.CheckFeasible(plan); err != nil {
				return hub.Device{}, err
			}
			return d, nil
		}
	}
	return hub.Device{}, fmt.Errorf("unknown device %q", name)
}
