package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"sidewinder/internal/fleetd"
	"sidewinder/internal/sensor"
	"sidewinder/internal/tracegen"
)

const stepsIR = `# pipeline: steps-wake
ACC_X -> movingAvg(id=1, params={3});
1 -> window(id=2, params={25, 12, rectangular});
2 -> stat(id=3, params={stddev});
3 -> minThreshold(id=4, params={0.7, 1});
4 -> OUT;
`

func writeTrace(t *testing.T, dir string) string {
	t.Helper()
	tr, err := tracegen.Robot(tracegen.RobotConfig{Seed: 3, Duration: time.Minute, IdleFraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "run.swtr")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := tr.WriteBinary(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReplayEndToEnd(t *testing.T) {
	dir := t.TempDir()
	irPath := filepath.Join(dir, "steps.ir")
	if err := os.WriteFile(irPath, []byte(stepsIR), 0o644); err != nil {
		t.Fatal(err)
	}
	tracePath := writeTrace(t, dir)
	if err := run(irPath, tracePath, "", false, "", "", "", "", nil); err != nil {
		t.Fatalf("replay: %v", err)
	}
	// Forcing the LM4F120 works; verbose path also exercised.
	if err := run(irPath, tracePath, "LM4F120", true, "", "", "", "", nil); err != nil {
		t.Fatalf("forced device: %v", err)
	}
}

func TestReplayErrors(t *testing.T) {
	dir := t.TempDir()
	irPath := filepath.Join(dir, "steps.ir")
	os.WriteFile(irPath, []byte(stepsIR), 0o644)
	tracePath := writeTrace(t, dir)

	if err := run("", tracePath, "", false, "", "", "", "", nil); err == nil {
		t.Error("missing -ir should fail")
	}
	if err := run(irPath, "", "", false, "", "", "", "", nil); err == nil {
		t.Error("missing -trace should fail")
	}
	if err := run(irPath, tracePath, "Z80", false, "", "", "", "", nil); err == nil {
		t.Error("unknown device should fail")
	}

	// Audio condition on an accel trace: missing channel.
	audioIR := "MIC -> window(id=1, params={64, 0, rectangular});\n1 -> stat(id=2, params={rms});\n2 -> minThreshold(id=3, params={0.5, 1});\n3 -> OUT;\n"
	audioPath := filepath.Join(dir, "audio.ir")
	os.WriteFile(audioPath, []byte(audioIR), 0o644)
	if err := run(audioPath, tracePath, "", false, "", "", "", "", nil); err == nil {
		t.Error("missing channel should fail")
	}

	// A JSON trace also loads.
	tr, err := tracegen.Robot(tracegen.RobotConfig{Seed: 3, Duration: 30 * time.Second, IdleFraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	jsonPath := filepath.Join(dir, "run.json")
	f, _ := os.Create(jsonPath)
	if err := tr.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := run(irPath, jsonPath, "", false, "", "", "", "", nil); err != nil {
		t.Errorf("json trace: %v", err)
	}
	_ = sensor.Event{} // keep the import for clarity of the test's domain
}

// TestReplayCrashProfile exercises -crash-profile: a valid spec replays
// with crashes reported, malformed specs are rejected, and the parser
// maps every key onto the profile.
func TestReplayCrashProfile(t *testing.T) {
	dir := t.TempDir()
	irPath := filepath.Join(dir, "steps.ir")
	if err := os.WriteFile(irPath, []byte(stepsIR), 0o644); err != nil {
		t.Fatal(err)
	}
	tracePath := writeTrace(t, dir)

	if err := run(irPath, tracePath, "", true, "", "", "mtbf=500,down=100,seed=1,kind=reset", "", nil); err != nil {
		t.Fatalf("crash replay: %v", err)
	}

	p, err := parseCrashProfile("mtbf=3000, down=40, max=200, seed=2, kind=brownout")
	if err != nil {
		t.Fatal(err)
	}
	if p.MTBFTicks != 3000 || p.MeanDownTicks != 40 || p.MaxDownTicks != 200 ||
		p.Seed != 2 || p.BrownoutWeight != 1 || p.ResetWeight != 0 {
		t.Errorf("parsed profile %+v", p)
	}

	for _, bad := range []string{
		"down=40",          // mtbf missing
		"mtbf=0",           // disabled
		"mtbf",             // not key=value
		"mtbf=x",           // bad number
		"mtbf=10,kind=ebs", // unknown kind
		"mtbf=10,foo=1",    // unknown key
	} {
		if _, err := parseCrashProfile(bad); err == nil {
			t.Errorf("spec %q should be rejected", bad)
		}
	}
}

// TestReplayTelemetryFiles exercises -metrics/-traceout: the replay must
// write a parseable metrics JSON object whose ledger carries the device's
// energy, and a Chrome trace_event JSON document with wake instants and
// stage spans.
func TestReplayTelemetryFiles(t *testing.T) {
	dir := t.TempDir()
	irPath := filepath.Join(dir, "steps.ir")
	if err := os.WriteFile(irPath, []byte(stepsIR), 0o644); err != nil {
		t.Fatal(err)
	}
	tracePath := writeTrace(t, dir)
	metricsFile := filepath.Join(dir, "metrics.json")
	traceFile := filepath.Join(dir, "trace.json")

	if err := run(irPath, tracePath, "", false, metricsFile, traceFile, "", "", nil); err != nil {
		t.Fatal(err)
	}

	var metrics struct {
		Metrics []map[string]any `json:"metrics"`
		Ledger  struct {
			EnergyMJ map[string]float64 `json:"energy_mj"`
		} `json:"ledger"`
	}
	data, err := os.ReadFile(metricsFile)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &metrics); err != nil {
		t.Fatalf("metrics file is not valid JSON: %v", err)
	}
	if len(metrics.Metrics) == 0 {
		t.Error("metrics file has no counters")
	}
	if metrics.Ledger.EnergyMJ["hub.device"] <= 0 {
		t.Errorf("ledger has no hub.device energy: %v", metrics.Ledger.EnergyMJ)
	}

	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	data, err = os.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &trace); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	var wakeEvents, spans int
	for _, ev := range trace.TraceEvents {
		switch ev["ph"] {
		case "i":
			if ev["name"] == "wake.sent" {
				wakeEvents++
			}
		case "X":
			spans++
		}
	}
	if wakeEvents == 0 {
		t.Error("trace has no wake.sent instants")
	}
	if spans == 0 {
		t.Error("trace has no per-stage spans")
	}
}

// TestReplayInterruptedStillFlushesTelemetry: a drain requested before
// the replay starts must still produce the -metrics file — the graceful
// path flushes telemetry instead of dying mid-frame.
func TestReplayInterruptedStillFlushesTelemetry(t *testing.T) {
	dir := t.TempDir()
	irPath := filepath.Join(dir, "steps.ir")
	if err := os.WriteFile(irPath, []byte(stepsIR), 0o644); err != nil {
		t.Fatal(err)
	}
	tracePath := writeTrace(t, dir)
	metricsFile := filepath.Join(dir, "metrics.json")

	d := fleetd.WatchSignals(syscall.SIGUSR1)
	defer d.Stop()
	d.Request() // interrupt before the first sample
	if err := run(irPath, tracePath, "", false, metricsFile, "", "", "", d); err != nil {
		t.Fatalf("interrupted replay: %v", err)
	}
	data, err := os.ReadFile(metricsFile)
	if err != nil {
		t.Fatalf("metrics file missing after interrupted run: %v", err)
	}
	var doc struct {
		Metrics json.RawMessage `json:"metrics"`
		Ledger  json.RawMessage `json:"ledger"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("metrics file is not valid JSON: %v\n%s", err, data)
	}
	if len(doc.Metrics) == 0 || len(doc.Ledger) == 0 {
		t.Fatalf("metrics file incomplete: %s", data)
	}

	// Interrupting mid-run (crash-profile forces the per-sample loop)
	// must flush too.
	d2 := fleetd.WatchSignals(syscall.SIGUSR1)
	defer d2.Stop()
	d2.Request()
	metrics2 := filepath.Join(dir, "metrics2.txt")
	if err := run(irPath, tracePath, "", false, metrics2, "", "mtbf=500,down=100,seed=1", "", d2); err != nil {
		t.Fatalf("interrupted per-sample replay: %v", err)
	}
	if _, err := os.Stat(metrics2); err != nil {
		t.Fatalf("metrics file missing after interrupted per-sample run: %v", err)
	}
}
