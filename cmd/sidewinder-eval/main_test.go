package main

import (
	"io"
	"strings"
	"testing"
	"time"

	"sidewinder/internal/eval"
)

func TestRunTable1(t *testing.T) {
	var out strings.Builder
	if err := run(&out, io.Discard, "table1", eval.Options{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Table 1") {
		t.Errorf("table output missing header:\n%s", out.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	opts := eval.Options{
		Seed:             1,
		RobotRunDuration: 30 * time.Second,
		AudioDuration:    30 * time.Second,
		HumanDuration:    time.Minute,
	}
	if err := run(io.Discard, io.Discard, "figure-nine", opts); err == nil {
		t.Fatal("unknown experiment should fail")
	}
}

func TestRunSmallFigure6(t *testing.T) {
	// The cheapest workload-bearing experiment, as an end-to-end check
	// of the command path.
	opts := eval.Options{
		Seed:             1,
		RobotRunDuration: time.Minute,
		AudioDuration:    30 * time.Second,
		HumanDuration:    time.Minute,
		SleepIntervals:   []float64{2, 10},
	}
	if err := run(io.Discard, io.Discard, "fig6", opts); err != nil {
		t.Fatal(err)
	}
}
