package main

import (
	"encoding/json"
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sidewinder/internal/eval"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

func TestRunTable1(t *testing.T) {
	var out strings.Builder
	if err := run(&out, io.Discard, "table1", eval.Options{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Table 1") {
		t.Errorf("table output missing header:\n%s", out.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	// Unknown names must be rejected before any workload generation: the
	// full default workload takes minutes, and a typo should not pay for
	// it. The deadline guards the "upfront" property.
	start := time.Now()
	err := run(io.Discard, io.Discard, "figure-nine", eval.Options{})
	if err == nil {
		t.Fatal("unknown experiment should fail")
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("rejection took %v; validation must run before workload generation", d)
	}
	msg := err.Error()
	if !strings.Contains(msg, `"figure-nine"`) {
		t.Errorf("error does not name the bad experiment: %q", msg)
	}
	for _, name := range experimentNames {
		if !strings.Contains(msg, name) {
			t.Errorf("error does not list valid experiment %q: %q", name, msg)
		}
	}
}

// TestTelemetryFlagsWriteFiles drives the -metrics/-trace plumbing end to
// end: a small link-reliability run with both sinks attached must produce
// a parseable metrics JSON object (registry + ledger) and a Chrome
// trace_event JSON document with events.
func TestTelemetryFlagsWriteFiles(t *testing.T) {
	dir := t.TempDir()
	metricsFile := filepath.Join(dir, "metrics.json")
	traceFile := filepath.Join(dir, "trace.json")

	opts := eval.Options{
		Seed:             1,
		RobotRunDuration: time.Minute,
		AudioDuration:    30 * time.Second,
		HumanDuration:    time.Minute,
		Telemetry:        telemetrySet(metricsFile, traceFile),
	}
	if err := run(io.Discard, io.Discard, "link", opts); err != nil {
		t.Fatal(err)
	}
	if err := writeTelemetry(opts.Telemetry, metricsFile, traceFile); err != nil {
		t.Fatal(err)
	}

	var metrics struct {
		Metrics []map[string]any `json:"metrics"`
		Ledger  map[string]any   `json:"ledger"`
	}
	data, err := os.ReadFile(metricsFile)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &metrics); err != nil {
		t.Fatalf("metrics file is not valid JSON: %v", err)
	}
	if len(metrics.Metrics) == 0 {
		t.Error("metrics file has no counters")
	}
	if len(metrics.Ledger) == 0 {
		t.Error("metrics file has no ledger")
	}

	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	data, err = os.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &trace); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Error("trace file has no events")
	}
}

// TestRunAllGolden pins the full `-experiment all` rendering at a small,
// fixed workload scale against a golden file, so a formatting or numeric
// regression in any table is caught without eyeballing docs/results/.
// The simulation is deterministic end to end (seeded traces, ordered
// parallel collection, seeded fault injection), so the bytes must match
// at any worker count. Refresh intentionally changed output with:
//
//	go test ./cmd/sidewinder-eval -run TestRunAllGolden -update
func TestRunAllGolden(t *testing.T) {
	opts := eval.Options{
		Seed:             1,
		RobotRunDuration: 2 * time.Minute,
		AudioDuration:    time.Minute,
		HumanDuration:    4 * time.Minute,
		SleepIntervals:   []float64{2, 10, 30},
	}
	var out strings.Builder
	if err := run(&out, io.Discard, "all", opts); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "all_small.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(out.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create): %v", err)
	}
	if got := out.String(); got != string(want) {
		t.Errorf("output differs from %s (run with -update if the change is intended)\ngot %d bytes, want %d",
			golden, len(got), len(want))
		gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if gl[i] != wl[i] {
				t.Errorf("first difference at line %d:\ngot:  %s\nwant: %s", i+1, gl[i], wl[i])
				break
			}
		}
	}
}

// TestRunCrashGolden pins the crash-resilience sweep at a small workload
// scale. The experiment is opt-in (excluded from "all"), so it carries
// its own golden; the all_small golden proves the crash subsystem left
// every other table byte-identical.
func TestRunCrashGolden(t *testing.T) {
	opts := eval.Options{
		Seed:             1,
		RobotRunDuration: 2 * time.Minute,
		AudioDuration:    time.Minute,
		HumanDuration:    4 * time.Minute,
		SleepIntervals:   []float64{2, 10, 30},
	}
	var out strings.Builder
	if err := run(&out, io.Discard, "crash", opts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Crash resilience") {
		t.Fatalf("missing crash table:\n%s", out.String())
	}
	golden := filepath.Join("testdata", "crash_small.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(out.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create): %v", err)
	}
	if got := out.String(); got != string(want) {
		t.Errorf("output differs from %s (run with -update if the change is intended)\ngot:\n%s\nwant:\n%s",
			golden, got, want)
	}
}

// TestRunFleetGolden pins the fleet capacity sweep at a small workload
// scale. Opt-in like "crash", so it carries its own golden file.
func TestRunFleetGolden(t *testing.T) {
	opts := eval.Options{
		Seed:             1,
		RobotRunDuration: 2 * time.Minute,
		AudioDuration:    time.Minute,
		HumanDuration:    4 * time.Minute,
		SleepIntervals:   []float64{2, 10, 30},
	}
	var out strings.Builder
	if err := run(&out, io.Discard, "fleet", opts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Fleet capacity") {
		t.Fatalf("missing fleet table:\n%s", out.String())
	}
	golden := filepath.Join("testdata", "fleet_small.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(out.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create): %v", err)
	}
	if got := out.String(); got != string(want) {
		t.Errorf("output differs from %s (run with -update if the change is intended)\ngot:\n%s\nwant:\n%s",
			golden, got, want)
	}
}

// TestRunFleetWorkerInvariance reruns the fleet sweep serially and with a
// large pool: the determinism contract demands byte-identical output.
// (The golden test pins the bytes; this one pins the worker independence
// explicitly, since fleet cells draw from per-cell seeded RNGs.)
func TestRunFleetWorkerInvariance(t *testing.T) {
	base := eval.Options{
		Seed:             1,
		RobotRunDuration: time.Minute,
		AudioDuration:    30 * time.Second,
		HumanDuration:    time.Minute,
		SleepIntervals:   []float64{2, 10},
	}
	render := func(workers int) string {
		t.Helper()
		opts := base
		opts.Workers = workers
		var out strings.Builder
		if err := run(&out, io.Discard, "fleet", opts); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	serial, wide := render(1), render(8)
	if serial != wide {
		t.Errorf("fleet output depends on worker count:\n1 worker:\n%s\n8 workers:\n%s", serial, wide)
	}
}

func TestRunSmallFigure6(t *testing.T) {
	// The cheapest workload-bearing experiment, as an end-to-end check
	// of the command path.
	opts := eval.Options{
		Seed:             1,
		RobotRunDuration: time.Minute,
		AudioDuration:    30 * time.Second,
		HumanDuration:    time.Minute,
		SleepIntervals:   []float64{2, 10},
	}
	if err := run(io.Discard, io.Discard, "fig6", opts); err != nil {
		t.Fatal(err)
	}
}

// TestRunAdaptiveGolden pins the closed-loop adaptation sweep at a small
// workload scale. Opt-in like "crash" and "fleet", so it carries its own
// golden file. The audio traces run four minutes — long enough for the
// policy engine to earn its rungs, which is what the table is about.
func TestRunAdaptiveGolden(t *testing.T) {
	opts := eval.Options{
		Seed:             1,
		RobotRunDuration: 2 * time.Minute,
		AudioDuration:    4 * time.Minute,
		HumanDuration:    2 * time.Minute,
		SleepIntervals:   []float64{2, 10, 30},
	}
	var out strings.Builder
	if err := run(&out, io.Discard, "adaptive", opts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Closed-loop adaptation") {
		t.Fatalf("missing adaptation table:\n%s", out.String())
	}
	golden := filepath.Join("testdata", "adaptive_small.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(out.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create): %v", err)
	}
	if got := out.String(); got != string(want) {
		t.Errorf("output differs from %s (run with -update if the change is intended)\ngot:\n%s\nwant:\n%s",
			golden, got, want)
	}
}

// TestRunAdaptiveWorkerInvariance reruns the adaptation sweep serially and
// with a large pool: the policy engine is driven only by the trace and
// cells aggregate in enqueue order, so the table must be byte-identical
// at any worker count — the contract the CI determinism leg re-checks
// against the committed golden.
func TestRunAdaptiveWorkerInvariance(t *testing.T) {
	base := eval.Options{
		Seed:             1,
		RobotRunDuration: 2 * time.Minute,
		AudioDuration:    4 * time.Minute,
		HumanDuration:    2 * time.Minute,
		SleepIntervals:   []float64{2, 10, 30},
	}
	render := func(workers int) string {
		t.Helper()
		opts := base
		opts.Workers = workers
		var out strings.Builder
		if err := run(&out, io.Discard, "adaptive", opts); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	serial, wide := render(1), render(8)
	if serial != wide {
		t.Errorf("adaptive output depends on worker count:\n1 worker:\n%s\n8 workers:\n%s", serial, wide)
	}
}
