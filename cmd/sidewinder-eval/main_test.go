package main

import (
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sidewinder/internal/eval"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

func TestRunTable1(t *testing.T) {
	var out strings.Builder
	if err := run(&out, io.Discard, "table1", eval.Options{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Table 1") {
		t.Errorf("table output missing header:\n%s", out.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	opts := eval.Options{
		Seed:             1,
		RobotRunDuration: 30 * time.Second,
		AudioDuration:    30 * time.Second,
		HumanDuration:    time.Minute,
	}
	if err := run(io.Discard, io.Discard, "figure-nine", opts); err == nil {
		t.Fatal("unknown experiment should fail")
	}
}

// TestRunAllGolden pins the full `-experiment all` rendering at a small,
// fixed workload scale against a golden file, so a formatting or numeric
// regression in any table is caught without eyeballing docs/results/.
// The simulation is deterministic end to end (seeded traces, ordered
// parallel collection, seeded fault injection), so the bytes must match
// at any worker count. Refresh intentionally changed output with:
//
//	go test ./cmd/sidewinder-eval -run TestRunAllGolden -update
func TestRunAllGolden(t *testing.T) {
	opts := eval.Options{
		Seed:             1,
		RobotRunDuration: 2 * time.Minute,
		AudioDuration:    time.Minute,
		HumanDuration:    4 * time.Minute,
		SleepIntervals:   []float64{2, 10, 30},
	}
	var out strings.Builder
	if err := run(&out, io.Discard, "all", opts); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "all_small.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(out.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create): %v", err)
	}
	if got := out.String(); got != string(want) {
		t.Errorf("output differs from %s (run with -update if the change is intended)\ngot %d bytes, want %d",
			golden, len(got), len(want))
		gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if gl[i] != wl[i] {
				t.Errorf("first difference at line %d:\ngot:  %s\nwant: %s", i+1, gl[i], wl[i])
				break
			}
		}
	}
}

func TestRunSmallFigure6(t *testing.T) {
	// The cheapest workload-bearing experiment, as an end-to-end check
	// of the command path.
	opts := eval.Options{
		Seed:             1,
		RobotRunDuration: time.Minute,
		AudioDuration:    30 * time.Second,
		HumanDuration:    time.Minute,
		SleepIntervals:   []float64{2, 10},
	}
	if err := run(io.Discard, io.Discard, "fig6", opts); err != nil {
		t.Fatal(err)
	}
}
