// Command sidewinder-eval regenerates the paper's evaluation: every table
// and figure of "Sidewinder: An Energy Efficient and Developer Friendly
// Heterogeneous Architecture for Continuous Mobile Sensing" (ASPLOS 2016).
//
// Usage:
//
//	sidewinder-eval [-experiment table1|table2|fig5|fig6|fig7|savings|battery|ablations|link|crash|fleet|adaptive|all]
//	                [-seed N] [-robot-min M] [-audio-min M] [-human-min M]
//	                [-workers N] [-speedup] [-cpuprofile FILE]
//	                [-metrics FILE] [-trace FILE] [-precision float64|q15]
//	                [-cse=false]
//
// Traces are synthesized deterministically from the seed, and simulation
// cells fan out over a worker pool that collects results in submission
// order, so two runs with the same flags print identical tables at any
// worker count.
//
// -metrics writes the run's telemetry counters and energy ledger to FILE
// (JSON when FILE ends in .json, aligned text otherwise). -trace writes a
// Chrome trace_event JSON file loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing. Both are strictly opt-in: without the flags no
// telemetry is attached and the tables are byte-identical to older builds.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/pprof"
	"strings"
	"time"

	"sidewinder/internal/eval"
	"sidewinder/internal/interp"
	"sidewinder/internal/parallel"
	"sidewinder/internal/telemetry"
)

func main() {
	experiment := flag.String("experiment", "all",
		"which experiment to run: "+strings.Join(experimentNames, ", "))
	seed := flag.Int64("seed", 1, "generator seed (same seed, same tables)")
	robotMin := flag.Int("robot-min", 30, "duration of each robot run in minutes")
	audioMin := flag.Int("audio-min", 30, "duration of each audio trace in minutes")
	humanMin := flag.Int("human-min", 120, "duration of each human trace in minutes")
	workers := flag.Int("workers", 0, "simulation workers (0 = one per CPU); any count prints identical tables")
	speedup := flag.Bool("speedup", false, "repeat the run with -workers=1 and report the parallel speedup")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	metricsFile := flag.String("metrics", "", "write telemetry metrics and energy ledger to this file (.json for JSON)")
	traceFile := flag.String("trace", "", "write a Chrome trace_event JSON trace to this file (open in Perfetto)")
	precision := flag.String("precision", "float64",
		"hub interpreter numeric substrate: float64 or q15 (saturating fixed-point)")
	cse := flag.Bool("cse", true,
		"share structurally identical pipeline subgraphs across resident apps (fleet experiment); -cse=false is the ablation")
	flag.Parse()

	prec, err := interp.ParsePrecision(*precision)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sidewinder-eval:", err)
		os.Exit(1)
	}

	opts := eval.Options{
		Seed:             *seed,
		RobotRunDuration: time.Duration(*robotMin) * time.Minute,
		AudioDuration:    time.Duration(*audioMin) * time.Minute,
		HumanDuration:    time.Duration(*humanMin) * time.Minute,
		Workers:          *workers,
		Telemetry:        telemetrySet(*metricsFile, *traceFile),
		Precision:        prec,
		DisableCSE:       !*cse,
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sidewinder-eval:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "sidewinder-eval:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	start := time.Now()
	if err := run(os.Stdout, os.Stderr, *experiment, opts); err != nil {
		fmt.Fprintln(os.Stderr, "sidewinder-eval:", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)
	effective := opts.Workers
	if effective <= 0 {
		effective = parallel.DefaultWorkers()
	}
	fmt.Fprintf(os.Stderr, "completed %s with %d workers in %v\n",
		*experiment, effective, elapsed.Round(time.Millisecond))

	if err := writeTelemetry(opts.Telemetry, *metricsFile, *traceFile); err != nil {
		fmt.Fprintln(os.Stderr, "sidewinder-eval:", err)
		os.Exit(1)
	}

	if *speedup {
		serialOpts := opts
		serialOpts.Workers = 1
		// The serial rerun is a timing baseline only: attaching the same
		// sinks again would double every counter and ledger entry.
		serialOpts.Telemetry = telemetry.Set{}
		serialStart := time.Now()
		if err := run(io.Discard, io.Discard, *experiment, serialOpts); err != nil {
			fmt.Fprintln(os.Stderr, "sidewinder-eval: serial rerun:", err)
			os.Exit(1)
		}
		serial := time.Since(serialStart)
		fmt.Fprintf(os.Stderr, "serial baseline (1 worker): %v; speedup %.2fx\n",
			serial.Round(time.Millisecond), serial.Seconds()/elapsed.Seconds())
	}
}

// experimentNames are the valid -experiment values, in presentation order.
// "crash" and "fleet" are not part of "all": the paper's tables assume an
// immortal single-tenant hub, and keeping the failure and capacity sweeps
// opt-in keeps "all" output stable for existing consumers.
var experimentNames = []string{
	"table1", "table2", "fig5", "fig6", "fig7",
	"savings", "battery", "ablations", "link", "crash", "fleet", "adaptive", "all",
}

func validExperiment(name string) bool {
	for _, n := range experimentNames {
		if n == name {
			return true
		}
	}
	return false
}

// telemetrySet builds the run's telemetry sinks from the output flags: a
// registry plus ledger when -metrics is set, a tracer when -trace is set.
// With neither flag the zero Set disables telemetry entirely.
func telemetrySet(metricsFile, traceFile string) telemetry.Set {
	var set telemetry.Set
	if metricsFile != "" {
		set.Metrics = telemetry.NewRegistry()
		set.Ledger = telemetry.NewLedger()
	}
	if traceFile != "" {
		set.Tracer = telemetry.NewTracer()
	}
	return set
}

// writeTelemetry exports the collected sinks to the requested files. The
// metrics file carries both the counter registry and the energy ledger —
// as one JSON object when the filename ends in .json, as aligned text
// otherwise. The trace file is always Chrome trace_event JSON.
func writeTelemetry(set telemetry.Set, metricsFile, traceFile string) error {
	if metricsFile != "" {
		f, err := os.Create(metricsFile)
		if err != nil {
			return err
		}
		if strings.HasSuffix(metricsFile, ".json") {
			_, err = io.WriteString(f, `{"metrics":`)
			if err == nil {
				err = set.Metrics.WriteJSON(f)
			}
			if err == nil {
				_, err = io.WriteString(f, `,"ledger":`)
			}
			if err == nil {
				err = set.Ledger.WriteJSON(f)
			}
			if err == nil {
				_, err = io.WriteString(f, "}\n")
			}
		} else {
			err = set.Metrics.WriteText(f)
			if err == nil {
				_, err = io.WriteString(f, "\n")
			}
			if err == nil {
				err = set.Ledger.WriteText(f)
			}
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("writing metrics: %w", err)
		}
	}
	if traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			return err
		}
		err = set.Tracer.WriteJSON(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("writing trace: %w", err)
		}
	}
	return nil
}

// run executes one experiment, writing tables to out and progress notes to
// progress. Unknown experiment names fail before any workload is
// generated.
func run(out, progress io.Writer, experiment string, opts eval.Options) error {
	if !validExperiment(experiment) {
		return fmt.Errorf("unknown experiment %q (valid: %s)",
			experiment, strings.Join(experimentNames, ", "))
	}
	needWorkload := experiment != "table1"
	var w *eval.Workload
	if needWorkload {
		start := time.Now()
		fmt.Fprintf(progress, "generating workload (seed %d)...\n", opts.Seed)
		var err error
		if w, err = eval.GenerateWorkload(opts); err != nil {
			return err
		}
		fmt.Fprintf(progress, "workload ready in %v\n\n", time.Since(start).Round(time.Millisecond))
	}

	want := func(name string) bool { return experiment == "all" || experiment == name }

	if want("table1") {
		fmt.Fprintln(out, eval.Table1().Render())
	}
	if want("table2") {
		res, err := eval.Table2(w)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, res.Table.Render())
		fmt.Fprintf(out, "(calibrated significant-sound threshold: %.4g; devices: %v)\n\n",
			res.PAThreshold, res.Devices)
	}
	if want("fig5") {
		res, err := eval.Figure5(opts, w)
		if err != nil {
			return err
		}
		for _, tb := range res.Tables {
			fmt.Fprintln(out, tb.Render())
		}
		fmt.Fprintf(out, "(calibrated significant-motion threshold: %.4g)\n", res.PAThreshold)
		fmt.Fprintf(out, "(average main-CPU classifier precision: steps %.0f%%, transitions %.0f%%, headbutts %.0f%%)\n\n",
			res.Precision["steps"]*100, res.Precision["transitions"]*100, res.Precision["headbutts"]*100)
	}
	if want("fig6") {
		res, err := eval.Figure6(opts, w)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, res.Table.Render())
	}
	if want("fig7") {
		res, err := eval.Figure7(opts, w)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, res.Table.Render())
		fmt.Fprint(out, "(Sidewinder's share of available savings:")
		for _, tr := range w.Human {
			fmt.Fprintf(out, " %s %.1f%%", tr.Name, res.SidewinderSavings[tr.Name]*100)
		}
		fmt.Fprint(out, ")\n\n")
	}
	if want("savings") {
		res, err := eval.Savings(opts, w)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, res.Table.Render())
		fmt.Fprintf(out, "(oracle range across accel scenarios: %.1f-%.1f mW; always-awake 323 mW)\n\n",
			res.OracleMinMW, res.OracleMaxMW)
	}
	if want("battery") {
		res, err := eval.BatteryLife(w)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, res.Table.Render())
	}
	if want("ablations") {
		ds, err := eval.DeviceSweep(w)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, ds.Table.Render())
		ca, err := eval.ConditionAblation(w)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, ca.Table.Render())
		bl, err := eval.BatchingLatency(opts, w)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, bl.Table.Render())
		ps, err := eval.PipelineSharing()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, ps.Table.Render())
		sr, err := eval.SirenRedesign(w)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, sr.Table.Render())
		at, err := eval.AdaptiveTuning(w)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, at.Table.Render())
	}
	if want("link") {
		lr, err := eval.LinkReliability(w)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, lr.Table.Render())
	}
	// Opt-in only — see experimentNames for why "all" excludes it.
	if experiment == "crash" {
		cr, err := eval.CrashResilience(w)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, cr.Table.Render())
	}
	// Opt-in only, like "crash".
	if experiment == "fleet" {
		fc, err := eval.FleetCapacity(opts, w)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, fc.Table.Render())
	}
	// Opt-in only, like "crash": the closed-loop sweep bills the hub
	// load-proportionally, which the paper's tables do not assume.
	if experiment == "adaptive" {
		ar, err := eval.Adaptive(w)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, ar.Table.Render())
	}
	return nil
}
