#!/usr/bin/env bash
# chaos.sh SIDEWINDERD_BIN FLEETLOAD_BIN CHAOSPROXY_BIN
#
# The chaos soak: for every fault profile and seed in the sweep, boot a
# fresh ingest daemon, put the seeded fault-injecting proxy in front of
# it, and replay a fleet population through the faults. Every leg must
# end with zero unrecovered devices, zero bye-handshake mismatches (the
# bit-for-bit per-device energy check), and a clean conserving drain —
# i.e. results identical to a fault-free run. A final leg SIGKILLs the
# daemon mid-replay, corrupts the newest checkpoint, restarts on the
# same address, and demands the same outcome via the .bak fallback.
#
# Intended for -race builds (make chaos / CI's chaos-soak job).
set -euo pipefail

DAEMON=${1:?usage: chaos.sh SIDEWINDERD_BIN FLEETLOAD_BIN CHAOSPROXY_BIN}
LOADGEN=${2:?usage: chaos.sh SIDEWINDERD_BIN FLEETLOAD_BIN CHAOSPROXY_BIN}
PROXY=${3:?usage: chaos.sh SIDEWINDERD_BIN FLEETLOAD_BIN CHAOSPROXY_BIN}
DEVICES=${CHAOS_DEVICES:-60}
APPS=${CHAOS_APPS:-2}
POP_SEED=${CHAOS_POP_SEED:-42}
TRACE_SECONDS=${CHAOS_TRACE_SECONDS:-4}
PROFILES=${CHAOS_PROFILES:-"resets corrupt combined"}
SEEDS=${CHAOS_SEEDS:-"1 2 3"}

workdir=$(mktemp -d)
daemon_pid=""
proxy_pid=""
total_faults=0

cleanup() {
    kill "$proxy_pid" "$daemon_pid" 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

# wait_for_line FILE SED_PATTERN PID LABEL — polls FILE until the sed
# capture yields output, dying if PID exits first. Leaves the capture in
# $ready_addr (no subshell: callers need the pid globals too).
wait_for_line() {
    local file=$1 pat=$2 pid=$3 label=$4
    ready_addr=""
    for _ in $(seq 1 100); do
        ready_addr=$(sed -n "$pat" "$file" | head -1)
        [ -n "$ready_addr" ] && return 0
        kill -0 "$pid" 2>/dev/null || { echo "chaos: $label died on startup:" >&2; cat "$file" >&2; return 1; }
        sleep 0.1
    done
    echo "chaos: $label never became ready:" >&2; cat "$file" >&2; return 1
}

start_daemon() { # start_daemon LOG CHECKPOINT [ADDR] — sets daemon_pid, daemon_addr
    local log=$1 checkpoint=$2 addr=${3:-127.0.0.1:0}
    "$DAEMON" -addr "$addr" -checkpoint "$checkpoint" -checkpoint-every 250ms -quiet \
        >"$log" 2>&1 &
    daemon_pid=$!
    wait_for_line "$log" 's/^sidewinderd: listening on \([^ ]*\).*/\1/p' "$daemon_pid" sidewinderd
    daemon_addr=$ready_addr
}

start_proxy() { # start_proxy LOG TARGET PROFILE SEED — sets proxy_pid, proxy_addr
    local log=$1 target=$2 profile=$3 seed=$4
    "$PROXY" -listen 127.0.0.1:0 -target "$target" -profile "$profile" -seed "$seed" -quiet \
        >"$log" 2>&1 &
    proxy_pid=$!
    wait_for_line "$log" 's/^chaosproxy: \([^ ]*\) ->.*/\1/p' "$proxy_pid" chaosproxy
    proxy_addr=$ready_addr
}

run_load() { # run_load LOG ADDR [EXTRA_FLAGS...]
    local log=$1 addr=$2; shift 2
    if ! "$LOADGEN" -addr "$addr" -devices "$DEVICES" -apps "$APPS" -seed "$POP_SEED" \
            -trace-seconds "$TRACE_SECONDS" -reconnect 40 \
            -backoff-base 10ms -backoff-cap 250ms -ack-timeout 5s "$@" >"$log" 2>&1; then
        echo "chaos: fleetload failed:"; cat "$log"; return 1
    fi
    grep -q 'mismatches=0' "$log" || { echo "chaos: bye handshake saw mismatches:"; cat "$log"; return 1; }
    grep -q 'unrecovered=0' "$log" || { echo "chaos: devices gave up:"; cat "$log"; return 1; }
    grep -q 'shed=0' "$log" || { echo "chaos: queues shed (totals would diverge):"; cat "$log"; return 1; }
    grep -q 'fleetload: summaries verified' "$log" || { echo "chaos: summaries not verified:"; cat "$log"; return 1; }
}

drain_daemon() { # drain_daemon LOG
    local log=$1 status=0
    kill -TERM "$daemon_pid"
    wait "$daemon_pid" || status=$?
    daemon_pid=""
    if [ "$status" -ne 0 ]; then
        echo "chaos: daemon exited with status $status:"; cat "$log"; return 1
    fi
    grep -q 'sidewinderd: conservation: OK' "$log" || { echo "chaos: conservation failed:"; cat "$log"; return 1; }
    grep -q 'sidewinderd: drain: clean' "$log" || { echo "chaos: drain not clean:"; cat "$log"; return 1; }
}

stop_proxy() { # stop_proxy LOG — drains the proxy and accumulates its fault count
    local log=$1
    kill -TERM "$proxy_pid"
    wait "$proxy_pid" || { echo "chaos: proxy exited dirty:"; cat "$log"; return 1; }
    proxy_pid=""
    local faults
    faults=$(sed -n 's/^chaosproxy: report //p' "$log" |
        grep -o '"\(resets\|cuts\|corrupt_chunks\|delays\|stalls\)":[0-9]*' |
        awk -F: '{s += $2} END {print s + 0}')
    total_faults=$((total_faults + ${faults:-0}))
}

echo "chaos: sweep: profiles [$PROFILES] x seeds [$SEEDS], $DEVICES devices"
leg=0
for profile in $PROFILES; do
    for seed in $SEEDS; do
        leg=$((leg + 1))
        dlog="$workdir/daemon-$leg.log"; plog="$workdir/proxy-$leg.log"; llog="$workdir/load-$leg.log"
        start_daemon "$dlog" "$workdir/cp-$leg.checkpoint"
        start_proxy "$plog" "$daemon_addr" "$profile" "$seed"
        run_load "$llog" "$proxy_addr"
        stop_proxy "$plog"
        drain_daemon "$dlog"
        echo "chaos: leg $leg PASS (profile=$profile seed=$seed): $(grep 'reconnects=' "$llog")"
    done
done

if [ "$total_faults" -eq 0 ]; then
    echo "chaos: the whole sweep injected zero faults — it proved nothing"; exit 1
fi
echo "chaos: sweep injected $total_faults faults total; every leg bit-for-bit clean"

# --- Kill-and-restart leg -------------------------------------------------
# SIGKILL the daemon mid-replay, corrupt the newest checkpoint, restart on
# the same address. The resume protocol plus the .bak fallback must make
# the crash invisible to the final totals.
leg=$((leg + 1))
dlog="$workdir/daemon-kill.log"; dlog2="$workdir/daemon-restart.log"; llog="$workdir/load-kill.log"
checkpoint="$workdir/cp-kill.checkpoint"
start_daemon "$dlog" "$checkpoint"
addr=$daemon_addr
kill_daemon_pid=$daemon_pid

# -pace stretches the replay to >= frames-per-device * pace of wall
# clock (~11 frames/device at the default sweep size -> well over 1.5s),
# so the kill below is guaranteed to land mid-stream.
"$LOADGEN" -addr "$addr" -devices "$DEVICES" -apps "$APPS" -seed "$POP_SEED" \
    -trace-seconds "$TRACE_SECONDS" -reconnect 60 -pace 150ms \
    -backoff-base 25ms -backoff-cap 500ms -ack-timeout 5s >"$llog" 2>&1 &
load_pid=$!

# Give the replay time to stream and the daemon time to rotate at least
# one periodic checkpoint (250ms cadence), then pull the plug.
sleep 1
kill -KILL "$kill_daemon_pid"
wait "$kill_daemon_pid" 2>/dev/null || true
daemon_pid=""
[ -s "$checkpoint" ] || { echo "chaos: no checkpoint written before the kill"; exit 1; }
[ -s "$checkpoint.bak" ] || { echo "chaos: checkpoint never rotated a .bak"; exit 1; }

# Corrupt the newest checkpoint: flip a byte in the middle.
python3 - "$checkpoint" <<'EOF' 2>/dev/null || dd if=/dev/zero of="$checkpoint" bs=1 seek=64 count=4 conv=notrunc status=none
import sys
p = sys.argv[1]
b = bytearray(open(p, "rb").read())
b[len(b) // 2] ^= 0x10
open(p, "wb").write(b)
EOF

start_daemon "$dlog2" "$checkpoint" "$addr"
[ "$daemon_addr" = "$addr" ] || { echo "chaos: restart bound $daemon_addr, wanted $addr"; exit 1; }
# Epoch >= 2 proves the restart loaded a checkpoint (the .bak, since the
# main file is corrupt) instead of silently starting fresh — a fresh
# start would also double-apply everything and fail the mismatch check.
epoch=$(sed -n 's/^sidewinderd: listening on .*epoch \([0-9]*\).*/\1/p' "$dlog2" | head -1)
[ "${epoch:-0}" -ge 2 ] || { echo "chaos: restart epoch ${epoch:-?}, wanted >= 2 (checkpoint not loaded):"; cat "$dlog2"; exit 1; }

wait "$load_pid" || { echo "chaos: fleetload failed across the kill:"; cat "$llog"; exit 1; }
grep -q 'mismatches=0' "$llog" || { echo "chaos: post-restart totals diverged:"; cat "$llog"; exit 1; }
grep -q 'unrecovered=0' "$llog" || { echo "chaos: devices never recovered from the kill:"; cat "$llog"; exit 1; }
grep -q 'fleetload: summaries verified' "$llog" || { echo "chaos: summaries not verified:"; cat "$llog"; exit 1; }
reconnects=$(sed -n 's/.*reconnects=\([0-9]*\).*/\1/p' "$llog" | head -1)
[ "${reconnects:-0}" -gt 0 ] || { echo "chaos: a SIGKILL without reconnects is not a test:"; cat "$llog"; exit 1; }
drain_daemon "$dlog2"
echo "chaos: leg $leg PASS (SIGKILL + corrupted checkpoint + restart): $(grep 'reconnects=' "$llog")"

echo "chaos: PASS ($leg legs, $DEVICES devices each, all bit-for-bit clean)"
