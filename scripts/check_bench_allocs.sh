#!/bin/sh
# check_bench_allocs.sh BASELINE CURRENT
#
# Fails (exit 1) when any benchmark present in BASELINE either
#   - is missing from CURRENT (a silently deleted contract), or
#   - reports more allocs/op in CURRENT than in BASELINE.
#
# Only allocs/op is compared: it is deterministic across machines, unlike
# timings, so the committed baseline gates regressions without a dedicated
# benchmarking host. Benchmarks are matched by name with the -NCPU suffix
# stripped. Improvements and new benchmarks are reported but never fail;
# refresh the baseline with `make bench-baseline` to lock them in.
#
# Hot-path contracts (small counts, notably the 0 allocs/op ones) are
# compared exactly. Whole-simulation benchmarks allocate tens of
# thousands of times per op and wobble by a handful of allocations run to
# run (GC timing shifts sync.Pool hits), so baselines of 1000+ allocs/op
# get 0.1% slack — far below any real regression, above the noise.
set -eu

if [ $# -ne 2 ]; then
    echo "usage: $0 baseline.txt current.txt" >&2
    exit 2
fi
baseline=$1
current=$2
for f in "$baseline" "$current"; do
    if [ ! -f "$f" ]; then
        echo "check_bench_allocs: no such file: $f" >&2
        exit 2
    fi
done

# Emit "name allocs" pairs from go test -bench -benchmem output.
extract() {
    awk '/^Benchmark/ && /allocs\/op/ {
        name = $1
        sub(/-[0-9]+$/, "", name)
        print name, $(NF-1)
    }' "$1"
}

extract "$baseline" | sort >"${current}.base.tmp"
extract "$current" | sort >"${current}.cur.tmp"
trap 'rm -f "${current}.base.tmp" "${current}.cur.tmp"' EXIT

if [ ! -s "${current}.base.tmp" ]; then
    echo "check_bench_allocs: baseline $baseline contains no benchmark lines" >&2
    exit 2
fi

fail=0
while read -r name base_allocs; do
    cur_allocs=$(awk -v n="$name" '$1 == n { print $2 }' "${current}.cur.tmp")
    if [ -z "$cur_allocs" ]; then
        echo "FAIL: $name present in baseline but missing from current run"
        fail=1
        continue
    fi
    allowed=$base_allocs
    if [ "$base_allocs" -ge 1000 ]; then
        allowed=$((base_allocs + (base_allocs + 999) / 1000))
    fi
    if [ "$cur_allocs" -gt "$allowed" ]; then
        echo "FAIL: $name allocs/op regressed: $base_allocs -> $cur_allocs"
        fail=1
    elif [ "$cur_allocs" -lt "$base_allocs" ]; then
        echo "note: $name improved: $base_allocs -> $cur_allocs allocs/op (refresh with 'make bench-baseline')"
    fi
done <"${current}.base.tmp"

while read -r name cur_allocs; do
    if ! awk -v n="$name" '$1 == n { found = 1 } END { exit !found }' "${current}.base.tmp"; then
        echo "note: new benchmark $name ($cur_allocs allocs/op) not in baseline (add with 'make bench-baseline')"
    fi
done <"${current}.cur.tmp"

if [ "$fail" -ne 0 ]; then
    echo "allocs/op regression detected against $baseline" >&2
    exit 1
fi
echo "allocs/op clean against $baseline"
