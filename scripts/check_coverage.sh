#!/bin/sh
# check_coverage.sh PROFILE FLOOR [PKG=FLOOR ...]
#
# Fails (exit 1) when the total statement coverage of the Go cover PROFILE
# is below FLOOR percent, or when any of the optional per-package floors
# (import path = percent) is violated. The floors live in the Makefile
# (COVER_FLOOR, PKG_FLOORS) so they are versioned next to the code they
# measure: raise them as coverage grows, and a change that drops coverage
# below a recorded floor fails CI instead of eroding the suite silently.
set -eu

if [ $# -lt 2 ]; then
    echo "usage: $0 coverage.out floor_percent [pkg=floor ...]" >&2
    exit 2
fi
profile=$1
floor=$2
shift 2
if [ ! -f "$profile" ]; then
    echo "check_coverage: no such profile: $profile (run 'make cover' first)" >&2
    exit 2
fi

total=$(go tool cover -func="$profile" | awk 'END { sub(/%$/, "", $3); print $3 }')
if [ -z "$total" ]; then
    echo "check_coverage: could not read total coverage from $profile" >&2
    exit 2
fi

echo "total statement coverage: ${total}% (floor: ${floor}%)"
awk -v t="$total" -v f="$floor" 'BEGIN { exit !(t+0 < f+0) }' && {
    echo "FAIL: coverage ${total}% is below the recorded floor ${floor}%" >&2
    exit 1
}

# Per-package floors, computed by weighting profile blocks by statement
# count (files directly in the package directory, not subpackages).
fail=0
for spec in "$@"; do
    pkg=${spec%=*}
    pfloor=${spec#*=}
    pcov=$(awk -v p="$pkg" 'NR > 1 {
        file = $1; sub(/:.*/, "", file)
        dir = file; sub(/\/[^\/]*$/, "", dir)
        if (dir != p) next
        stmts = $(NF-1)
        total += stmts
        if ($NF > 0) covered += stmts
    } END { if (total > 0) printf "%.1f", 100 * covered / total }' "$profile")
    if [ -z "$pcov" ]; then
        echo "FAIL: package $pkg has no blocks in $profile" >&2
        fail=1
        continue
    fi
    echo "$pkg statement coverage: ${pcov}% (floor: ${pfloor}%)"
    if awk -v t="$pcov" -v f="$pfloor" 'BEGIN { exit !(t+0 < f+0) }'; then
        echo "FAIL: $pkg coverage ${pcov}% is below its floor ${pfloor}%" >&2
        fail=1
    fi
done
if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "coverage floor holds"
