#!/bin/sh
# check_coverage.sh PROFILE FLOOR
#
# Fails (exit 1) when the total statement coverage of the Go cover PROFILE
# is below FLOOR percent. The floor lives in the Makefile (COVER_FLOOR) so
# it is versioned next to the code it measures: raise it as coverage
# grows, and a change that drops coverage below the recorded floor fails
# CI instead of eroding the suite silently.
set -eu

if [ $# -ne 2 ]; then
    echo "usage: $0 coverage.out floor_percent" >&2
    exit 2
fi
profile=$1
floor=$2
if [ ! -f "$profile" ]; then
    echo "check_coverage: no such profile: $profile (run 'make cover' first)" >&2
    exit 2
fi

total=$(go tool cover -func="$profile" | awk 'END { sub(/%$/, "", $3); print $3 }')
if [ -z "$total" ]; then
    echo "check_coverage: could not read total coverage from $profile" >&2
    exit 2
fi

echo "total statement coverage: ${total}% (floor: ${floor}%)"
awk -v t="$total" -v f="$floor" 'BEGIN { exit !(t+0 < f+0) }' && {
    echo "FAIL: coverage ${total}% is below the recorded floor ${floor}%" >&2
    exit 1
}
echo "coverage floor holds"
