#!/usr/bin/env bash
# soak.sh SIDEWINDERD_BIN FLEETLOAD_BIN
#
# Boots the ingest daemon, replays a fleet population at it over
# loopback, sends SIGTERM, and asserts the drain was clean: the daemon
# must report "conservation: OK" and "drain: clean", and fleetload must
# verify every device summary with zero mismatches. Intended to run on
# -race builds (make soak / CI's race-soak job) so the whole socket path
# gets race-checked under real concurrency.
set -euo pipefail

DAEMON=${1:?usage: soak.sh SIDEWINDERD_BIN FLEETLOAD_BIN}
LOADGEN=${2:?usage: soak.sh SIDEWINDERD_BIN FLEETLOAD_BIN}
DEVICES=${SOAK_DEVICES:-200}
APPS=${SOAK_APPS:-2}
SEED=${SOAK_SEED:-42}
TRACE_SECONDS=${SOAK_TRACE_SECONDS:-5}

workdir=$(mktemp -d)
daemon_log="$workdir/sidewinderd.log"
load_log="$workdir/fleetload.log"
checkpoint="$workdir/fleet.checkpoint"

cleanup() {
    kill "$daemon_pid" 2>/dev/null || true
    wait "$daemon_pid" 2>/dev/null || true
    rm -rf "$workdir"
}

"$DAEMON" -addr 127.0.0.1:0 -checkpoint "$checkpoint" -quiet >"$daemon_log" 2>&1 &
daemon_pid=$!
trap cleanup EXIT

# The daemon prints its bound (ephemeral) address on the first line.
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^sidewinderd: listening on \([^ ]*\).*/\1/p' "$daemon_log" | head -1)
    [ -n "$addr" ] && break
    kill -0 "$daemon_pid" 2>/dev/null || { echo "soak: daemon died on startup:"; cat "$daemon_log"; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { echo "soak: daemon never reported its address:"; cat "$daemon_log"; exit 1; }
echo "soak: daemon up on $addr (pid $daemon_pid)"

if ! "$LOADGEN" -addr "$addr" -devices "$DEVICES" -apps "$APPS" -seed "$SEED" \
        -trace-seconds "$TRACE_SECONDS" >"$load_log" 2>&1; then
    echo "soak: fleetload failed:"; cat "$load_log"; exit 1
fi
cat "$load_log"
grep -q 'mismatches=0' "$load_log" || { echo "soak: fleetload saw summary mismatches"; exit 1; }
grep -q 'fleetload: summaries verified' "$load_log" || { echo "soak: fleetload did not verify summaries"; exit 1; }

kill -TERM "$daemon_pid"
drain_status=0
wait "$daemon_pid" || drain_status=$?
cat "$daemon_log"
if [ "$drain_status" -ne 0 ]; then
    echo "soak: daemon exited with status $drain_status"; exit 1
fi
grep -q 'sidewinderd: conservation: OK' "$daemon_log" || { echo "soak: conservation check missing or failed"; exit 1; }
grep -q 'sidewinderd: drain: clean' "$daemon_log" || { echo "soak: drain did not complete cleanly"; exit 1; }
[ -s "$checkpoint" ] || { echo "soak: final checkpoint missing"; exit 1; }
echo "soak: PASS ($DEVICES devices, clean drain, ledger conserved)"
