package sidewinder

import "sidewinder/internal/eval"

// Experiment surface: programmatic access to every table and figure of the
// paper's evaluation (the same code behind cmd/sidewinder-eval).
type (
	// EvalTable is a rendered experiment result.
	EvalTable = eval.Table
	// Table2Result carries the audio-application power matrix.
	Table2Result = eval.Table2Result
	// Figure5Result carries the robot-trace configuration matrix.
	Figure5Result = eval.Figure5Result
	// Figure6Result carries duty-cycling recall vs sleep interval.
	Figure6Result = eval.Figure6Result
	// Figure7Result carries the human-trace comparison.
	Figure7Result = eval.Figure7Result
	// SavingsResult carries the §5.1-5.2 headline numbers.
	SavingsResult = eval.SavingsResult
	// BatteryLifeResult carries battery-life estimates per application.
	BatteryLifeResult = eval.BatteryLifeResult
	// LinkReliabilityResult carries the lossy-link error-rate sweep.
	LinkReliabilityResult = eval.LinkReliabilityResult
)

// GenerateEvalWorkload synthesizes the full evaluation trace set (18 robot
// runs, 3 audio environments, 3 human profiles) for the options.
func GenerateEvalWorkload(o EvalOptions) (*EvalWorkload, error) {
	return eval.GenerateWorkload(o)
}

// Table1 regenerates the Nexus 4 power profile (paper Table 1).
func Table1() *EvalTable { return eval.Table1() }

// Table2 regenerates the audio-application power matrix (paper Table 2).
func Table2(w *EvalWorkload) (*Table2Result, error) { return eval.Table2(w) }

// Figure5 regenerates the robot-trace configuration comparison (paper
// Fig. 5).
func Figure5(o EvalOptions, w *EvalWorkload) (*Figure5Result, error) {
	return eval.Figure5(o, w)
}

// Figure6 regenerates duty-cycling recall vs sleep interval (paper Fig. 6).
func Figure6(o EvalOptions, w *EvalWorkload) (*Figure6Result, error) {
	return eval.Figure6(o, w)
}

// Figure7 regenerates the human-trace step-detector comparison (paper
// Fig. 7).
func Figure7(o EvalOptions, w *EvalWorkload) (*Figure7Result, error) {
	return eval.Figure7(o, w)
}

// Savings regenerates the §5.1-5.2 savings analysis.
func Savings(o EvalOptions, w *EvalWorkload) (*SavingsResult, error) {
	return eval.Savings(o, w)
}

// BatteryLife translates average power into Nexus 4 battery life per
// application.
func BatteryLife(w *EvalWorkload) (*BatteryLifeResult, error) {
	return eval.BatteryLife(w)
}

// LinkReliability sweeps the serial link's frame-error rate, comparing
// delivered wake-up recall and energy overhead of raw frames vs the
// stop-and-wait ARQ layer.
func LinkReliability(w *EvalWorkload) (*LinkReliabilityResult, error) {
	return eval.LinkReliability(w)
}
